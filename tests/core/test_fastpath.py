"""The incremental fast path: index invariants, golden-seed pins for the
legacy schedulers, distributional equivalence of the fast schedulers, and
exactness of batch collapsing / geometric null-step skip-ahead."""

import random

import pytest

from repro.baselines import binary_threshold_protocol, majority_protocol
from repro.core import (
    EnabledIndex,
    EnabledTransitionScheduler,
    FastEnabledScheduler,
    FastUniformScheduler,
    Multiset,
    PopulationProtocol,
    UniformPairScheduler,
    simulate,
)
from repro.observability import TraceRecorder
from repro.observability import events as ev

#: Upper 0.1% points of the chi-square distribution (no scipy in the
#: container, so the needed quantiles are hardcoded).
CHI2_CRIT_001 = {1: 10.828, 2: 13.816, 3: 16.266, 4: 18.467, 5: 20.515}


def two_sample_chi2(a, b):
    """Two-sample chi-square statistic for equal-sized category counts."""
    assert len(a) == len(b) and sum(a) == sum(b)
    stat = 0.0
    for oa, ob in zip(a, b):
        if oa + ob == 0:
            continue
        exp = (oa + ob) / 2
        stat += (oa - exp) ** 2 / exp + (ob - exp) ** 2 / exp
    return stat


def cascade_protocol(n=50):
    """One deterministic key: (a, b -> b, b) converts the a-population one
    agent at a time — the batch collapser's ideal case."""
    pp = PopulationProtocol(
        states=["a", "b"],
        transitions=[("a", "b", "b", "b")],
        input_states=["a", "b"],
        accepting_states=["b"],
        name="cascade",
    )
    return pp, Multiset({"a": n, "b": 1})


# ----------------------------------------------------------------------
# EnabledIndex invariant
# ----------------------------------------------------------------------
class TestEnabledIndex:
    @pytest.mark.parametrize("mode", ["enabled", "uniform"])
    def test_invariant_after_random_watched_mutations(self, mode):
        pp = binary_threshold_protocol(6)
        cfg = Multiset({"p0": 11})
        index = EnabledIndex(pp, mode=mode)
        index.attach(cfg)
        index.validate(cfg)
        rng = random.Random(42)
        states = sorted(pp.states, key=repr)
        for step in range(2_000):
            s = rng.choice(states)
            if rng.random() < 0.5 and cfg[s] > 0:
                cfg.dec(s)
            else:
                cfg.inc(s)
            if step % 100 == 0:
                index.validate(cfg)
        index.validate(cfg)
        index.detach()

    def test_foreign_states_are_ignored(self):
        pp = majority_protocol()
        cfg = Multiset({"X": 3, "Y": 2})
        index = EnabledIndex(pp, mode="enabled")
        index.attach(cfg)
        cfg.inc("not-a-protocol-state", 7)
        index.validate(Multiset({"X": 3, "Y": 2}))
        index.detach()

    def test_detach_stops_updates(self):
        pp = majority_protocol()
        cfg = Multiset({"X": 3, "Y": 2})
        index = EnabledIndex(pp, cfg, mode="enabled")
        index.attach(cfg)
        index.detach()
        before = index.total
        cfg.inc("X", 10)
        assert index.total == before  # stale by design after detach

    def test_weights_match_pair_counts(self):
        pp = majority_protocol()
        cfg = Multiset({"X": 4, "Y": 3, "x": 2})
        index = EnabledIndex(pp, cfg, mode="enabled")
        assert index.weight("X", "Y") == 4 * 3
        assert index.weight("Y", "x") == 3 * 2
        assert index.weight("x", "y") == 0  # y unoccupied
        weights = index.enabled_weights()
        assert weights[("X", "Y")] == 12
        assert all(w > 0 for w in weights.values())

    def test_silence_detection_is_exact(self):
        pp = majority_protocol()
        index = EnabledIndex(pp, Multiset({"X": 5, "x": 4}), mode="enabled")
        assert index.is_silent_now()  # X/x have no productive transitions
        index.rebuild(Multiset({"X": 5, "y": 1}))
        assert not index.is_silent_now()  # (X, y -> X, x) is enabled

    def test_sample_key_only_returns_active_keys(self):
        pp = binary_threshold_protocol(5)
        cfg = Multiset({"p0": 9})
        index = EnabledIndex(pp, cfg, mode="enabled")
        rng = random.Random(0)
        for _ in range(500):
            i = index.sample_key(rng)
            assert index.w[i] > 0


# ----------------------------------------------------------------------
# Golden seeds: the legacy schedulers must stay bit-exact forever
# ----------------------------------------------------------------------
# (seed, verdict, silent, interactions, productive) recorded from the
# legacy engine (support iterated in sorted order, so the values are
# independent of the process hash salt); any drift here breaks
# reproduction of runs recorded with the legacy schedulers.
LEGACY_ENABLED_PINS = [
    (0, False, False, 2000, 2000),
    (1, True, True, 1446, 1445),
    (2, False, False, 2000, 2000),
    (3, True, True, 1661, 1660),
    (4, False, False, 2000, 2000),
]
LEGACY_UNIFORM_PINS = [
    (0, True, True, 512, 26),
    (1, True, True, 512, 32),
    (2, True, True, 512, 38),
    (3, True, True, 512, 30),
    (4, True, True, 512, 26),
]


class TestLegacyGoldenSeeds:
    @pytest.mark.parametrize("pin", LEGACY_ENABLED_PINS, ids=lambda p: f"seed{p[0]}")
    def test_enabled_scheduler_is_pinned(self, pin):
        seed, verdict, silent, interactions, productive = pin
        result = simulate(
            binary_threshold_protocol(13),
            Multiset({"p0": 40}),
            seed=seed,
            scheduler=EnabledTransitionScheduler(),
            max_interactions=200_000,
        )
        assert (
            result.verdict,
            result.silent,
            result.interactions,
            result.productive,
        ) == (verdict, silent, interactions, productive)

    @pytest.mark.parametrize("pin", LEGACY_UNIFORM_PINS, ids=lambda p: f"seed{p[0]}")
    def test_uniform_scheduler_is_pinned(self, pin):
        seed, verdict, silent, interactions, productive = pin
        result = simulate(
            majority_protocol(),
            Multiset({"X": 12, "Y": 9}),
            seed=seed,
            scheduler=UniformPairScheduler(),
            max_interactions=200_000,
        )
        assert (
            result.verdict,
            result.silent,
            result.interactions,
            result.productive,
        ) == (verdict, silent, interactions, productive)


# ----------------------------------------------------------------------
# Distributional equivalence (fast vs legacy, chi-square at alpha=0.001)
# ----------------------------------------------------------------------
class TestDistributionalEquivalence:
    def test_enabled_verdict_distribution_matches_legacy(self):
        # binary(13) on 40 agents stabilises to either verdict depending
        # on the trajectory, so the verdict frequency is a sensitive
        # functional of the sampling distribution.  250 runs per engine.
        pp = binary_threshold_protocol(13)
        config = Multiset({"p0": 40})

        def verdicts(scheduler, seed0):
            out = [
                simulate(
                    pp,
                    config,
                    seed=seed0 + s,
                    scheduler=scheduler,
                    max_interactions=20_000,
                ).verdict
                for s in range(250)
            ]
            assert None not in out
            return [out.count(True), out.count(False)]

        legacy = verdicts(EnabledTransitionScheduler(), 0)
        fast = verdicts(FastEnabledScheduler(), 10_000)
        stat = two_sample_chi2(legacy, fast)
        assert stat < CHI2_CRIT_001[1], (stat, legacy, fast)

    def test_uniform_interaction_distribution_matches_legacy(self):
        # The run length to detected silence under the uniform scheduler
        # mixes matched-step sampling and the geometric null-skip, so its
        # distribution pins both mechanisms at once.  250 runs per engine.
        pp = majority_protocol()
        config = Multiset({"X": 6, "Y": 4})
        bins = [0, 36, 44, 56, 10**9]

        def binned(scheduler, seed0):
            lengths = [
                simulate(
                    pp,
                    config,
                    seed=seed0 + s,
                    scheduler=scheduler,
                    max_interactions=50_000,
                    convergence_window=10**9,
                    check_silence_every=4,
                ).interactions
                for s in range(250)
            ]
            return [
                sum(1 for v in lengths if lo <= v < hi)
                for lo, hi in zip(bins, bins[1:])
            ]

        legacy = binned(UniformPairScheduler(), 0)
        fast = binned(FastUniformScheduler(), 10_000)
        stat = two_sample_chi2(legacy, fast)
        assert stat < CHI2_CRIT_001[len(bins) - 2], (stat, legacy, fast)

    def test_uniform_verdicts_match_legacy_per_seed(self):
        # Majority outcomes are trajectory-independent, so fast and
        # legacy must agree run by run even though trajectories differ.
        pp = majority_protocol()
        config = Multiset({"X": 12, "Y": 9})
        for seed in range(20):
            legacy = simulate(
                pp, config, seed=seed, scheduler=UniformPairScheduler()
            )
            fast = simulate(
                pp, config, seed=seed, scheduler=FastUniformScheduler()
            )
            assert (legacy.verdict, legacy.silent) == (fast.verdict, fast.silent)


# ----------------------------------------------------------------------
# Batch collapsing: exact, fully accounted, observer-transparent
# ----------------------------------------------------------------------
class TestBatchCollapsing:
    def test_deterministic_cascade_is_collapsed_exactly(self):
        pp, config = cascade_protocol(50)
        recorder = TraceRecorder()
        result = simulate(pp, config, seed=0, observer=recorder)
        assert result.verdict is True and result.silent
        assert result.productive == 50
        assert result.final == Multiset({"b": 51})
        batches = recorder.events_of(ev.BATCH)
        assert batches and all(e.data["batch"] == "collapse" for e in batches)
        # Complete accounting: every interaction is either a per-step
        # INTERACTION event or inside a BATCH count.
        counts = recorder.kind_counts()
        batched = sum(e.data["count"] for e in batches)
        assert counts.get(ev.INTERACTION, 0) + batched == result.interactions

    def test_snapshot_boundaries_split_batches(self):
        pp, config = cascade_protocol(50)
        recorder = TraceRecorder(snapshot_every=16)
        result = simulate(pp, config, seed=0, observer=recorder)
        snapshots = recorder.snapshots()
        assert snapshots
        for event in snapshots:
            assert event.step % 16 == 0
            assert sum(event.data["configuration"].values()) == 51
        batched = sum(e.data["count"] for e in recorder.events_of(ev.BATCH))
        counts = recorder.kind_counts()
        assert counts.get(ev.INTERACTION, 0) + batched == result.interactions

    def test_observation_does_not_change_the_run(self):
        # Batch splitting at snapshot boundaries consumes no randomness,
        # so an observed fast run is bit-identical to an unobserved one.
        pp, config = cascade_protocol(50)
        bare = simulate(pp, config, seed=3)
        observed = simulate(pp, config, seed=3, observer=TraceRecorder(snapshot_every=8))
        assert (bare.verdict, bare.silent, bare.interactions, bare.productive) == (
            observed.verdict,
            observed.silent,
            observed.interactions,
            observed.productive,
        )
        assert bare.final == observed.final

    def test_output_flip_interactions_are_exact_in_batches(self):
        pp, config = cascade_protocol(50)
        result = simulate(pp, config, seed=0)
        # The output flips to True exactly when the last 'a' converts —
        # productive step 50 — even though the run was collapsed.
        assert result.output_trace[0] == (0, None)
        flip_step, flip_out = result.output_trace[-1]
        assert flip_out is True and flip_step == 50


# ----------------------------------------------------------------------
# Geometric null-step skip-ahead
# ----------------------------------------------------------------------
class TestGeometricSkip:
    def test_null_runs_are_batched_and_fully_accounted(self):
        pp = majority_protocol()
        config = Multiset({"X": 60, "Y": 40})
        recorder = TraceRecorder()
        result = simulate(
            pp,
            config,
            seed=5,
            scheduler=FastUniformScheduler(),
            max_interactions=50_000,
            convergence_window=10**9,
            observer=recorder,
        )
        batches = recorder.events_of(ev.BATCH)
        assert batches and all(e.data["batch"] == "null_skip" for e in batches)
        counts = recorder.kind_counts()
        batched = sum(e.data["count"] for e in batches)
        assert counts.get(ev.INTERACTION, 0) + batched == result.interactions
        # Null steps dominate once opposing agents become scarce.
        assert batched > counts.get(ev.INTERACTION, 0)

    def test_silence_is_detected_at_check_multiples(self):
        pp = majority_protocol()
        config = Multiset({"X": 12, "Y": 9})
        for seed in range(5):
            result = simulate(
                pp, config, seed=seed, scheduler=FastUniformScheduler()
            )
            assert result.silent and result.verdict is True
            assert result.interactions % 512 == 0

    def test_interactions_never_exceed_budget(self):
        pp = majority_protocol()
        # An instance that cannot stabilise before the tiny budget.
        config = Multiset({"X": 500, "Y": 500})
        result = simulate(
            pp,
            config,
            seed=1,
            scheduler=FastUniformScheduler(),
            max_interactions=1_000,
            convergence_window=10**9,
        )
        assert result.interactions == 1_000
        assert result.verdict is None and not result.silent
