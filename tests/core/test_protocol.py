"""Unit tests for the protocol model (Section 3 definitions)."""

import pytest

from repro.core import (
    InvalidConfigurationError,
    InvalidProtocolError,
    Multiset,
    PopulationProtocol,
    Transition,
)
from repro.core.protocol import iter_nontrivial


def tiny():
    return PopulationProtocol(
        states=["a", "b"],
        transitions=[Transition("a", "a", "a", "b")],
        input_states=["a"],
        accepting_states=["b"],
        name="tiny",
    )


class TestValidation:
    def test_valid_protocol(self):
        pp = tiny()
        assert pp.state_count == 2
        assert len(pp.transitions) == 1

    def test_unknown_state_in_transition(self):
        with pytest.raises(InvalidProtocolError):
            PopulationProtocol(["a"], [("a", "a", "a", "z")], ["a"], [])

    def test_empty_states(self):
        with pytest.raises(InvalidProtocolError):
            PopulationProtocol([], [], [], [])

    def test_empty_inputs(self):
        with pytest.raises(InvalidProtocolError):
            PopulationProtocol(["a"], [], [], [])

    def test_inputs_must_be_states(self):
        with pytest.raises(InvalidProtocolError):
            PopulationProtocol(["a"], [], ["z"], [])

    def test_accepting_must_be_states(self):
        with pytest.raises(InvalidProtocolError):
            PopulationProtocol(["a"], [], ["a"], ["z"])

    def test_tuple_transitions_normalised(self):
        pp = PopulationProtocol(["a", "b"], [("a", "b", "b", "a")], ["a"], [])
        assert isinstance(pp.transitions[0], Transition)

    def test_duplicate_transitions_removed(self):
        t = ("a", "b", "b", "a")
        pp = PopulationProtocol(["a", "b"], [t, t], ["a"], [])
        assert len(pp.transitions) == 1


class TestTransition:
    def test_noop_detection(self):
        assert Transition("a", "b", "a", "b").is_noop()
        assert not Transition("a", "b", "b", "a").is_noop()

    def test_pre_post(self):
        t = Transition("a", "b", "c", "d")
        assert t.pre() == Multiset(["a", "b"])
        assert t.post() == Multiset(["c", "d"])

    def test_transitions_from_index(self):
        pp = tiny()
        assert len(pp.transitions_from("a", "a")) == 1
        assert pp.transitions_from("b", "b") == []

    def test_has_interaction_excludes_noops(self):
        pp = PopulationProtocol(
            ["a", "b"],
            [("a", "b", "a", "b"), ("b", "a", "a", "a")],
            ["a"],
            [],
        )
        assert not pp.has_interaction("a", "b")
        assert pp.has_interaction("b", "a")

    def test_iter_nontrivial(self):
        pp = PopulationProtocol(
            ["a", "b"],
            [("a", "b", "a", "b"), ("b", "a", "a", "a")],
            ["a"],
            [],
        )
        assert [t.q for t in iter_nontrivial(pp)] == ["b"]


class TestOutput:
    def test_output_true(self):
        pp = tiny()
        assert pp.output(Multiset({"b": 3})) is True

    def test_output_false(self):
        pp = tiny()
        assert pp.output(Multiset({"a": 3})) is False

    def test_output_mixed_is_none(self):
        pp = tiny()
        assert pp.output(Multiset({"a": 1, "b": 1})) is None

    def test_is_initial(self):
        pp = tiny()
        assert pp.is_initial(Multiset({"a": 2}))
        assert not pp.is_initial(Multiset({"a": 1, "b": 1}))
        assert not pp.is_initial(Multiset())

    def test_initial_configuration_builder(self):
        pp = tiny()
        config = pp.initial_configuration({"a": 4})
        assert config.size == 4
        with pytest.raises(InvalidConfigurationError):
            pp.initial_configuration({"b": 1})

    def test_check_configuration(self):
        pp = tiny()
        with pytest.raises(InvalidConfigurationError):
            pp.check_configuration(Multiset())
        with pytest.raises(InvalidConfigurationError):
            pp.check_configuration(Multiset({"z": 1}))

    def test_describe_mentions_name(self):
        assert "tiny" in tiny().describe()
