"""Tests for predicate encodings and formula sizes."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    Equality,
    Interval,
    Majority,
    Multiset,
    Remainder,
    ShiftedThreshold,
    Threshold,
    binary_length,
)


class TestFormulaSize:
    def test_binary_length(self):
        assert binary_length(0) == 1
        assert binary_length(1) == 1
        assert binary_length(2) == 2
        assert binary_length(255) == 8
        assert binary_length(256) == 9

    def test_threshold_size_is_log_k(self):
        # The paper: phi_n(x) <=> x >= 2^n has |phi_n| in Theta(n).
        assert Threshold(2**10).formula_size() == 11
        assert Threshold(2**20).formula_size() == 21

    def test_interval_size(self):
        assert Interval(4, 7).formula_size() == binary_length(4) + binary_length(7)

    def test_remainder_size(self):
        assert Remainder(8, 1).formula_size() == binary_length(8) + binary_length(1)


class TestEvaluation:
    def test_threshold(self):
        t = Threshold(5)
        assert not t(4) and t(5) and t(6)

    def test_threshold_bignum(self):
        k = 2 ** (2**8)
        t = Threshold(k)
        assert not t(k - 1) and t(k)

    def test_equality(self):
        e = Equality(3)
        assert e(3) and not e(2) and not e(4)

    def test_interval(self):
        i = Interval(4, 7)
        assert [i(x) for x in range(3, 8)] == [False, True, True, True, False]

    def test_remainder(self):
        r = Remainder(3, 1)
        assert r(1) and r(4) and not r(3)

    def test_remainder_normalises(self):
        assert Remainder(3, 4)(1)

    def test_remainder_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            Remainder(0)

    def test_majority(self):
        m = Majority()
        assert m(3, 3) and m(4, 3) and not m(2, 3)

    def test_keyword_call(self):
        assert Majority()(y=2, x=5)

    def test_missing_variable_raises(self):
        with pytest.raises(TypeError):
            Majority()(3)

    def test_shifted_threshold(self):
        p = ShiftedThreshold(Threshold(2), 9)
        assert not p(10) and p(11) and p(15)
        assert not p(5)  # below the shift itself

    def test_shifted_size_includes_shift(self):
        p = ShiftedThreshold(Threshold(4), 9)
        assert p.formula_size() == Threshold(4).formula_size() + binary_length(9)


class TestInputConfiguration:
    def test_majority_of_configuration(self):
        m = Majority()
        config = Multiset({"X": 3, "Y": 2})
        assert m.of_input_configuration(config, {"X": "x", "Y": "y"})

    def test_states_summed_per_variable(self):
        t = Threshold(4)
        config = Multiset({"a": 2, "b": 3})
        assert t.of_input_configuration(config, {"a": "x", "b": "x"})


@given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=0, max_value=10**6))
def test_threshold_matches_comparison(k, x):
    assert Threshold(k)(x) == (x >= k)


@given(
    st.integers(min_value=1, max_value=1000),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=2000),
)
def test_shifted_threshold_definition(k, shift, x):
    """Theorem 5's phi': phi'(x) <=> phi(x - i) and x >= i."""
    p = ShiftedThreshold(Threshold(k), shift)
    assert p(x) == (x >= shift and (x - shift) >= k)


@given(st.integers(min_value=1, max_value=64))
def test_formula_size_monotone_in_bits(bits):
    assert Threshold(2**bits).formula_size() == bits + 1
