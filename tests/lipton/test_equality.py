"""Tests for the Section 9 extension: deciding m = k with O(n) size."""

import pytest

from repro.core import Equality
from repro.lipton import (
    build_equality_program,
    build_threshold_program,
    canonical_restart_policy,
    equality_predicate,
    suggested_quiet_window,
    threshold,
)
from repro.programs import decide_program, program_size, validate_program


class TestStructure:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_validates(self, n):
        validate_program(build_equality_program(n))

    def test_size_close_to_threshold_variant(self):
        """Equality costs only a constant number of extra instructions."""
        for n in (1, 2, 3):
            eq = program_size(build_equality_program(n)).total
            thr = program_size(build_threshold_program(n)).total
            assert thr < eq <= thr + 10

    def test_size_linear(self):
        totals = [program_size(build_equality_program(n)).total for n in range(1, 6)]
        increments = [b - a for a, b in zip(totals, totals[1:])]
        assert len(set(increments[2:])) == 1

    def test_predicate(self):
        assert equality_predicate(2) == Equality(10)

    def test_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            build_equality_program(0)


class TestDecisions:
    @pytest.mark.parametrize("m", [1, 2, 3, 5])
    def test_n1_boundary(self, m):
        prog = build_equality_program(1)
        got = decide_program(
            prog,
            {"x1": m},
            seed=31 * m,
            restart_policy=canonical_restart_policy(1),
            quiet_window=suggested_quiet_window(1),
        )
        assert got == (m == 2)

    @pytest.mark.parametrize("m", [8, 9, 10, 11, 14])
    def test_n2_boundary(self, m):
        prog = build_equality_program(2)
        got = decide_program(
            prog,
            {"x1": m},
            seed=13 * m,
            restart_policy=canonical_restart_policy(2),
            quiet_window=suggested_quiet_window(2),
            max_steps=30_000_000,
        )
        assert got == (m == 10)

    def test_inputs_spread_across_registers(self):
        prog = build_equality_program(2)
        got = decide_program(
            prog,
            {"R": 5, "yb2": 5},
            seed=7,
            restart_policy=canonical_restart_policy(2),
            quiet_window=suggested_quiet_window(2),
            max_steps=30_000_000,
        )
        assert got is True  # total 10 = k_2
