"""Tests for the bare Lipton counter (leader baseline, §5.1)."""

import pytest

from repro.lipton import (
    build_parallel_program,
    build_threshold_program,
    decide_with_trusted_initialisation,
    parallel_program_size,
    threshold,
)
from repro.programs import Restart, program_size, validate_program
from repro.programs.ast import iter_statements


class TestStructure:
    def test_validates(self):
        validate_program(build_parallel_program(2))

    def test_no_assert_procedures(self):
        prog = build_parallel_program(3)
        assert not any(name.startswith("Assert") for name in prog.procedures)

    def test_still_linear_size(self):
        sizes = [parallel_program_size(n).total for n in range(1, 6)]
        increments = [b - a for a, b in zip(sizes, sizes[1:])]
        assert len(set(increments[1:])) == 1

    def test_smaller_than_checked_variant(self):
        for n in (1, 2, 3):
            bare = parallel_program_size(n).total
            full = program_size(build_threshold_program(n)).total
            assert bare < full

    def test_large_keeps_entry_restart_check_only_with_checks(self):
        bare = build_parallel_program(2)
        restarts = sum(
            isinstance(stmt, Restart)
            for proc in bare.procedures.values()
            for stmt in iter_statements(proc.body)
        )
        assert restarts == 0


class TestTrustedDecisions:
    @pytest.mark.parametrize("n", [1, 2])
    def test_boundary(self, n):
        k = threshold(n)
        for m in (max(0, k - 1), k, k + 2):
            got = decide_with_trusted_initialisation(n, m, seed=m)
            assert got == (m >= k), (n, m)

    def test_n3_spot_check(self):
        k = threshold(3)
        assert decide_with_trusted_initialisation(3, k, seed=1) is True
        assert decide_with_trusted_initialisation(3, k - 1, seed=1) is False


class TestAdversarialFragility:
    def test_bare_counter_fails_without_trusted_init(self):
        """X2's point: the bare counter is wrong on some adversarial
        configurations — e.g. plenty of agents parked in R never get
        counted, so an above-threshold input is rejected."""
        from repro.programs import decide_program

        n = 1
        k = threshold(n)
        prog = build_parallel_program(n)
        # All units in R: the counter sees empty levels and stabilises
        # false although m >= k.
        got = decide_program(
            prog, {"R": k + 3}, seed=0, quiet_window=20_000, strict=False
        )
        assert got is False  # wrong answer: demonstrates the fragility
