"""Tests for level constants and register naming (Section 6)."""

import pytest
from hypothesis import given, strategies as st

from repro.lipton import (
    RESERVE,
    all_registers,
    bar,
    double_exponential_lower_bound,
    level_constant,
    level_of,
    level_registers,
    threshold,
    x,
    xbar,
    y,
    ybar,
)


class TestConstants:
    def test_first_constants(self):
        assert [level_constant(i) for i in range(1, 5)] == [1, 4, 25, 676]

    def test_recurrence(self):
        for i in range(1, 10):
            assert level_constant(i + 1) == (level_constant(i) + 1) ** 2

    def test_double_exponential_growth(self):
        """N_i + 1 >= 2^(2^(i-1)) (induction: (N_i+1)^2 >= (2^(2^(i-1)))^2)."""
        for i in range(1, 12):
            assert level_constant(i) + 1 >= 2 ** (2 ** (i - 1))

    def test_level_zero_rejected(self):
        with pytest.raises(ValueError):
            level_constant(0)

    def test_thresholds(self):
        assert threshold(1) == 2
        assert threshold(2) == 10
        assert threshold(3) == 60
        assert threshold(4) == 1412

    def test_threshold_rejects_zero(self):
        with pytest.raises(ValueError):
            threshold(0)

    @pytest.mark.parametrize("n", range(1, 10))
    def test_theorem3_bound(self, n):
        """k_n >= 2^(2^(n-1)) — the Theorem 3 guarantee."""
        assert threshold(n) >= double_exponential_lower_bound(n)

    def test_bignum_levels(self):
        # n = 12: N_n has ~600 digits; must not overflow or crawl.
        value = level_constant(12)
        assert value.bit_length() > 2**10


class TestRegisters:
    def test_naming(self):
        assert (x(3), xbar(3), y(3), ybar(3)) == ("x3", "xb3", "y3", "yb3")

    def test_bar_involution(self):
        for reg in ("x2", "xb2", "y7", "yb7"):
            assert bar(bar(reg)) == reg

    def test_bar_pairs(self):
        assert bar("x1") == "xb1"
        assert bar("yb4") == "y4"

    def test_bar_of_reserve_rejected(self):
        with pytest.raises(ValueError):
            bar(RESERVE)

    def test_level_of(self):
        assert level_of("x3") == 3
        assert level_of("yb12") == 12
        with pytest.raises(ValueError):
            level_of(RESERVE)

    def test_level_registers(self):
        assert level_registers(2) == ("x2", "xb2", "y2", "yb2")

    def test_all_registers_count(self):
        """4n + 1 registers (Theorem 3's proof)."""
        for n in (1, 3, 6):
            regs = all_registers(n)
            assert len(regs) == 4 * n + 1
            assert regs[-1] == RESERVE
            assert len(set(regs)) == len(regs)


@given(st.integers(min_value=1, max_value=8))
def test_threshold_strictly_increasing(n):
    assert threshold(n + 1) > threshold(n)


@given(st.integers(min_value=1, max_value=8))
def test_threshold_dominated_by_top_level(n):
    """k_n = 2 * sum N_i < 4 * N_n (the top level dominates)."""
    assert threshold(n) < 4 * level_constant(n)
