"""Tests for canonical good configurations C_m (Theorem 3's proof)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lipton import (
    MainBehaviour,
    RESERVE,
    canonical_restart_policy,
    classify,
    expected_behaviour,
    good_configuration,
    is_i_empty,
    is_i_low,
    is_i_proper,
    level_constant,
    threshold,
    xbar,
    ybar,
)


class TestAboveThreshold:
    def test_exactly_k_is_n_proper(self):
        for n in (1, 2, 3):
            config = good_configuration(n, threshold(n))
            assert is_i_proper(config, n)
            assert config.get(RESERVE, 0) == 0

    def test_surplus_goes_to_reserve(self):
        n = 2
        config = good_configuration(n, threshold(n) + 7)
        assert is_i_proper(config, n)
        assert config[RESERVE] == 7

    def test_structure(self):
        config = good_configuration(2, threshold(2))
        assert config == {
            xbar(1): 1, ybar(1): 1, xbar(2): 4, ybar(2): 4,
        }


class TestBelowThreshold:
    def test_low_and_empty(self):
        """For every m < k the canonical C_m is j-low and (j+1)-empty."""
        n = 3
        for m in range(0, threshold(n)):
            config = good_configuration(n, m)
            result = classify(config, n)
            assert result.behaviour == MainBehaviour.STABILISE_FALSE, m
            j = result.low_level
            assert is_i_low(config, j)
            assert is_i_empty(config, j + 1, n)

    def test_even_split_across_xbar_ybar(self):
        config = good_configuration(2, 7)  # uses levels 1 (2 units) + 5 rest
        assert config[xbar(1)] == 1 and config[ybar(1)] == 1
        assert config[xbar(2)] + config[ybar(2)] == 5
        assert abs(config[xbar(2)] - config[ybar(2)]) <= 1

    def test_zero_total(self):
        assert good_configuration(2, 0) == {}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            good_configuration(1, -1)


class TestExpectedBehaviour:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_never_restarts(self, n):
        for m in range(0, threshold(n) + 3):
            assert expected_behaviour(n, m) != MainBehaviour.RESTART

    def test_boundary(self):
        n = 2
        k = threshold(n)
        assert expected_behaviour(n, k - 1) == MainBehaviour.STABILISE_FALSE
        assert expected_behaviour(n, k) == MainBehaviour.STABILISE_TRUE


class TestPolicy:
    def test_policy_preserves_total(self):
        import random

        from repro.lipton import all_registers

        policy = canonical_restart_policy(2)
        sample = policy.sample(17, tuple(all_registers(2)), random.Random(0))
        assert sum(sample.values()) == 17

    def test_policy_matches_good_configuration(self):
        import random

        from repro.lipton import all_registers

        policy = canonical_restart_policy(2)
        sample = policy.sample(5, tuple(all_registers(2)), random.Random(0))
        expected = good_configuration(2, 5)
        assert {k: v for k, v in sample.items() if v} == expected


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 4), st.integers(0, 2000))
def test_total_always_preserved(n, m):
    config = good_configuration(n, m)
    assert sum(config.values()) == m
    assert all(v > 0 for v in config.values())
