"""Tests for the Section 6 construction: structure, size, and the
per-procedure lemmas (8–12) checked directly via call_procedure."""

import pytest

from repro.lipton import (
    assert_empty_name,
    assert_proper_name,
    build_threshold_program,
    good_configuration,
    incr_pair_name,
    large_name,
    level_constant,
    threshold,
    threshold_predicate,
    zero_name,
)
from repro.programs import call_procedure, program_size, validate_program


def proper_prefix(i):
    """An (i-1)-proper register configuration (levels 1..i-1 at rest)."""
    config = {}
    for j in range(1, i):
        config[f"xb{j}"] = level_constant(j)
        config[f"yb{j}"] = level_constant(j)
    return config


class TestStructure:
    def test_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            build_threshold_program(0)

    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_registers_are_4n_plus_1(self, n):
        prog = build_threshold_program(n)
        assert len(prog.registers) == 4 * n + 1

    def test_procedure_inventory_n2(self, lipton2_program):
        names = set(lipton2_program.procedures)
        assert "Main" in names
        assert assert_proper_name(1) in names and assert_proper_name(2) in names
        assert assert_empty_name(2) in names and assert_empty_name(3) in names
        # Zero and IncrPair only exist below the top level.
        assert zero_name("x1") in names and zero_name("yb1") in names
        assert zero_name("x2") not in names
        assert incr_pair_name("x1", "y1") in names
        assert incr_pair_name("xb1", "yb1") in names
        # Large exists for the complement registers at the top level.
        assert large_name("xb2") in names and large_name("yb2") in names

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_validates(self, n):
        validate_program(build_threshold_program(n))

    def test_size_linear_in_n(self):
        """Theorem 3: size O(n) — the per-level increment is constant."""
        totals = [program_size(build_threshold_program(n)).total for n in range(1, 8)]
        increments = [b - a for a, b in zip(totals, totals[1:])]
        # The first levels amortise fixed parts; from level 3 on the
        # per-level increment is exactly constant.
        assert len(set(increments[2:])) == 1

    def test_swap_size_is_4n(self):
        for n in (1, 2, 4):
            assert program_size(build_threshold_program(n)).swap_size == 4 * n

    def test_predicate(self):
        assert threshold_predicate(3).k == threshold(3) == 60

    def test_error_checking_flag_shrinks_program(self):
        full = program_size(build_threshold_program(3)).total
        bare = program_size(build_threshold_program(3, error_checking=False)).total
        assert bare < full


class TestLemma8AssertEmpty:
    """Lemma 8: AssertEmpty(i) has no effect if i-empty, may restart else."""

    def test_empty_config_returns_unchanged(self, lipton2_program):
        config = {"x1": 3, "xb1": 1}  # junk below level 2 only
        outcome = call_procedure(
            lipton2_program, assert_empty_name(2), config, seed=0
        )
        assert outcome.returned
        assert outcome.registers["x1"] == 3 and outcome.registers["xb1"] == 1

    def test_nonempty_eventually_restarts(self, lipton2_program):
        config = {"x2": 1}
        for seed in range(10):
            outcome = call_procedure(
                lipton2_program, assert_empty_name(2), config, seed=seed
            )
            if outcome.restarted:
                return
        pytest.fail("AssertEmpty never restarted on a nonempty configuration")

    def test_reserve_only_checked_at_top(self, lipton2_program):
        outcome = call_procedure(
            lipton2_program, assert_empty_name(3), {"x2": 5}, seed=0
        )
        assert outcome.returned  # level-2 junk invisible to AssertEmpty(3)

    def test_never_modifies_registers(self, lipton2_program):
        config = {"x2": 2, "R": 1}
        outcome = call_procedure(
            lipton2_program, assert_empty_name(2), config, seed=3
        )
        total = sum(outcome.registers.values())
        assert total == 3
        assert outcome.registers.get("x2") == 2  # values untouched either way


class TestLemma9AssertProper:
    """Lemma 9: no effect on i-proper/i-low; restarts on violations."""

    def test_proper_config_unchanged(self, lipton2_program):
        config = good_configuration(2, threshold(2))
        outcome = call_procedure(
            lipton2_program, assert_proper_name(2), config, seed=1
        )
        assert outcome.returned
        assert {k: v for k, v in outcome.registers.items() if v} == config

    def test_low_config_unchanged(self, lipton2_program):
        config = {"xb1": 1, "yb1": 1, "xb2": 2, "ybn": 0, "yb2": 3}
        config.pop("ybn")
        outcome = call_procedure(
            lipton2_program, assert_proper_name(2), config, seed=1
        )
        assert outcome.returned

    def test_nonzero_x_restarts(self, lipton2_program):
        config = {"x1": 1, "xb1": 1, "yb1": 1}
        for seed in range(10):
            outcome = call_procedure(
                lipton2_program, assert_proper_name(1), config, seed=seed
            )
            if outcome.restarted:
                return
        pytest.fail("AssertProper never restarted with x1 > 0")

    def test_overfull_xbar_restarts(self, lipton2_program):
        """Lemma 9c: C(xbar) > N_i is detectable via Large + detect."""
        config = {"xb1": 3, "yb1": 1}  # N_1 = 1 < 3
        restarted = 0
        for seed in range(20):
            outcome = call_procedure(
                lipton2_program, assert_proper_name(1), config, seed=seed
            )
            restarted += outcome.restarted
        assert restarted > 0


class TestLemma10Zero:
    """Lemma 10: Zero is a deterministic zero-check on weakly proper
    configurations, and preserves registers."""

    def test_true_on_zero_register(self, lipton2_program):
        config = good_configuration(2, threshold(2))
        outcome = call_procedure(lipton2_program, zero_name("x1"), config, seed=0)
        assert outcome.returned and outcome.value is True
        assert {k: v for k, v in outcome.registers.items() if v} == config

    def test_false_on_nonzero_register(self, lipton2_program):
        config = good_configuration(2, threshold(2))
        outcome = call_procedure(lipton2_program, zero_name("xb1"), config, seed=0)
        assert outcome.returned and outcome.value is False

    def test_weakly_proper_split(self, lipton3_program):
        """Level-2 Zero with the invariant split as x2=1, xb2=3."""
        config = proper_prefix(2)
        config.update({"x2": 1, "xb2": 3, "yb2": 4})
        outcome = call_procedure(lipton3_program, zero_name("x2"), config, seed=0)
        assert outcome.value is False
        outcome = call_procedure(lipton3_program, zero_name("y2"), config, seed=0)
        assert outcome.value is True

    def test_preserves_level_sums(self, lipton3_program):
        config = proper_prefix(2)
        config.update({"x2": 2, "xb2": 2, "y2": 1, "yb2": 3})
        outcome = call_procedure(lipton3_program, zero_name("y2"), config, seed=5)
        regs = outcome.registers
        assert regs["x2"] + regs["xb2"] == 4
        assert regs["y2"] + regs["yb2"] == 4


class TestLemma11IncrPair:
    """Lemma 11: IncrPair increments the two-digit base-(N_i+1) counter."""

    @staticmethod
    def ctr(regs, xreg, yreg, ni):
        return regs[xreg] * (ni + 1) + regs[yreg]

    def test_single_increment(self, lipton2_program):
        config = {"xb1": 1, "yb1": 1, "xb2": 4, "yb2": 4}
        outcome = call_procedure(
            lipton2_program, incr_pair_name("x1", "y1"), config, seed=0
        )
        assert outcome.returned
        assert self.ctr(outcome.registers, "x1", "y1", 1) == 1

    def test_full_cycle_wraps(self, lipton2_program):
        """N_2 = (N_1+1)^2 = 4 increments wrap the level-1 counter to 0."""
        config = {"xb1": 1, "yb1": 1}
        regs = dict(config)
        values = []
        for step in range(4):
            outcome = call_procedure(
                lipton2_program, incr_pair_name("x1", "y1"), regs, seed=step
            )
            assert outcome.returned
            regs = outcome.registers
            values.append(self.ctr(regs, "x1", "y1", 1))
        assert values == [1, 2, 3, 0]

    def test_preserves_other_levels(self, lipton2_program):
        config = {"xb1": 1, "yb1": 1, "xb2": 4, "yb2": 4, "R": 2}
        outcome = call_procedure(
            lipton2_program, incr_pair_name("x1", "y1"), config, seed=0
        )
        for reg in ("xb2", "yb2", "R"):
            assert outcome.registers[reg] == config[reg]

    def test_reversibility_on_high_configs(self, lipton2_program):
        """Lemma 11b: C --IncrPair(x,y)--> C' implies C' may return to C
        via IncrPair(xbar, ybar) (sampled search over runs)."""
        config = {"x1": 1, "xb1": 1, "y1": 1, "yb1": 1}  # 1-high
        outcome = call_procedure(
            lipton2_program, incr_pair_name("x1", "y1"), config, seed=0
        )
        assert outcome.returned
        intermediate = outcome.registers
        for seed in range(50):
            back = call_procedure(
                lipton2_program,
                incr_pair_name("xb1", "yb1"),
                intermediate,
                seed=seed,
            )
            if back.returned and {
                k: v for k, v in back.registers.items() if v
            } == config:
                return
        pytest.fail("IncrPair reverse never undid the forward step")


class TestLemma12Large:
    """Lemma 12: Large(x) nondeterministically certifies x >= N_i."""

    def test_level1_true_branch(self, lipton2_program):
        config = {"xb1": 1, "yb1": 1}
        for seed in range(10):
            outcome = call_procedure(
                lipton2_program, large_name("xb1"), config, seed=seed
            )
            if outcome.value:
                break
        assert outcome.value is True
        # C(xbar) = N_1: the swap has no net effect (C' = C).
        assert {k: v for k, v in outcome.registers.items() if v} == config

    def test_level1_false_when_empty(self, lipton2_program):
        outcome = call_procedure(
            lipton2_program, large_name("x1"), {"xb1": 1, "yb1": 1}, seed=0
        )
        assert outcome.value is False

    def test_level2_true_on_proper(self, lipton2_program):
        config = good_configuration(2, threshold(2))
        for seed in range(20):
            outcome = call_procedure(
                lipton2_program, large_name("xb2"), config, seed=seed
            )
            assert outcome.returned
            if outcome.value:
                assert {k: v for k, v in outcome.registers.items() if v} == config
                return
        pytest.fail("Large(xb2) never returned true on a proper configuration")

    def test_level2_false_leaves_config(self, lipton2_program):
        config = good_configuration(2, threshold(2))
        outcome = call_procedure(
            lipton2_program, large_name("xb2"), config, seed=0,
            detect_true_probability=0.05,  # bias towards the false branch
        )
        if outcome.value is False:
            assert {k: v for k, v in outcome.registers.items() if v} == config

    def test_level2_false_when_undersupplied(self, lipton3_program):
        """x2 < N_2 with the invariant held: Large must return false.

        Large(x2) (a non-complement register) is only instantiated when
        level 2 is an inner level, i.e. for n >= 3."""
        config = {"xb1": 1, "yb1": 1, "x2": 1, "xb2": 3, "y2": 0, "yb2": 4}
        for seed in range(10):
            outcome = call_procedure(
                lipton3_program, large_name("x2"), config, seed=seed
            )
            assert outcome.returned
            assert outcome.value is False

    def test_effect_on_surplus(self, lipton3_program):
        """Lemma 12b: on success C'(x) = C(xbar) + N_i, C'(xbar) = C(x) - N_i."""
        config = proper_prefix(2)
        config.update({"x2": 5, "xb2": 1})  # x2 >= N_2 = 4
        for seed in range(30):
            outcome = call_procedure(
                lipton3_program, large_name("x2"), config, seed=seed
            )
            assert outcome.returned
            if outcome.value:
                assert outcome.registers["x2"] == 1 + 4
                assert outcome.registers["xb2"] == 5 - 4
                return
        pytest.fail("Large(x2) never succeeded despite x2 >= N_2")

    def test_entry_check_restarts_on_dirty_counter(self, lipton2_program):
        """Large(x_i) with x_{i-1} nonzero restarts (entry check)."""
        config = {"x1": 1, "xb1": 1, "yb1": 1, "xb2": 4}
        restarted = 0
        for seed in range(20):
            outcome = call_procedure(
                lipton2_program, large_name("xb2"), config, seed=seed
            )
            restarted += outcome.restarted
        assert restarted > 0
