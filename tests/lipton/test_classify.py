"""Tests for configuration classification (Figure 2 / Appendix A)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lipton import (
    MainBehaviour,
    classify,
    is_i_empty,
    is_i_high,
    is_i_low,
    is_i_proper,
    is_weakly_i_proper,
    level_constant,
    max_proper_prefix,
    threshold,
    x,
    xbar,
    y,
    ybar,
)


def proper_config(n):
    config = {}
    for i in range(1, n + 1):
        config[xbar(i)] = level_constant(i)
        config[ybar(i)] = level_constant(i)
    return config


class TestProper:
    def test_zero_proper_vacuous(self):
        assert is_i_proper({}, 0)

    def test_n_proper(self):
        assert is_i_proper(proper_config(3), 3)

    def test_proper_prefix(self):
        config = proper_config(2)
        assert is_i_proper(config, 1)
        assert is_i_proper(config, 2)
        assert not is_i_proper(config, 3)

    def test_nonzero_x_breaks_properness(self):
        config = proper_config(2)
        config[x(1)] = 1
        assert not is_i_proper(config, 1)

    def test_wrong_xbar_breaks_properness(self):
        config = proper_config(2)
        config[xbar(2)] = level_constant(2) + 1
        assert is_i_proper(config, 1)
        assert not is_i_proper(config, 2)


class TestWeakly:
    def test_proper_is_weakly_proper(self):
        assert is_weakly_i_proper(proper_config(2), 2)

    def test_split_invariant(self):
        config = proper_config(1)
        n2 = level_constant(2)
        config.update({x(2): 1, xbar(2): n2 - 1, y(2): n2, ybar(2): 0})
        assert is_weakly_i_proper(config, 2)
        assert not is_i_proper(config, 2)

    def test_broken_sum_not_weakly(self):
        config = proper_config(1)
        config.update({x(2): 1, xbar(2): 1})
        assert not is_weakly_i_proper(config, 2)


class TestLowHigh:
    def test_low(self):
        config = proper_config(1)
        config[xbar(2)] = 2  # < N_2 = 4, x2 = 0
        config[ybar(2)] = 4
        assert is_i_low(config, 2)
        assert not is_i_high(config, 2)

    def test_high(self):
        config = proper_config(1)
        n2 = level_constant(2)
        config.update({x(2): 2, xbar(2): n2, y(2): 1, ybar(2): n2})
        assert is_i_high(config, 2)
        assert not is_i_low(config, 2)

    def test_proper_is_neither(self):
        config = proper_config(2)
        assert not is_i_low(config, 2)
        assert not is_i_high(config, 2)

    def test_neither_low_nor_high_possible(self):
        """E.g. x positive but undersupplied ybar: neither case applies."""
        config = proper_config(1)
        config.update({x(2): 1, xbar(2): 0, ybar(2): 0})
        assert not is_i_low(config, 2)
        assert not is_i_high(config, 2)

    def test_low_high_mutually_exclusive_by_search(self):
        """Exhaustive small search: no level-1 configuration is both."""
        for xv in range(3):
            for xbv in range(3):
                for yv in range(3):
                    for ybv in range(3):
                        config = {x(1): xv, xbar(1): xbv, y(1): yv, ybar(1): ybv}
                        assert not (is_i_low(config, 1) and is_i_high(config, 1))


class TestEmpty:
    def test_empty_levels(self):
        config = {x(1): 3, xbar(1): 1}  # junk below level 2 only
        assert is_i_empty(config, 2, 3)
        assert not is_i_empty(config, 1, 3)

    def test_reserve_counts(self):
        assert not is_i_empty({"R": 1}, 1, 2)
        assert is_i_empty({}, 1, 2)

    def test_n_plus_one_checks_only_reserve(self):
        config = {x(2): 5}
        assert is_i_empty(config, 3, 2)
        assert not is_i_empty({**config, "R": 1}, 3, 2)


class TestClassify:
    def test_n_proper_stabilises_true(self):
        result = classify(proper_config(2), 2)
        assert result.behaviour == MainBehaviour.STABILISE_TRUE
        assert result.n_proper

    def test_low_and_empty_stabilises_false(self):
        config = {xbar(1): 1}  # 1-low, 2-empty (m = 1 < k = 2)
        result = classify(config, 1)
        assert result.behaviour == MainBehaviour.STABILISE_FALSE
        assert result.low_level == 1

    def test_otherwise_restarts(self):
        config = {x(1): 2}  # x nonzero: not low, not proper
        assert classify(config, 1).behaviour == MainBehaviour.RESTART

    def test_low_but_not_empty_restarts(self):
        config = {xbar(1): 1, "R": 1}
        assert classify(config, 1).behaviour == MainBehaviour.RESTART

    def test_max_proper_prefix(self):
        config = proper_config(2)
        config[xbar(3)] = 1
        assert max_proper_prefix(config, 3) == 2


@settings(max_examples=200, deadline=None)
@given(
    st.integers(0, 3), st.integers(0, 5), st.integers(0, 3), st.integers(0, 5),
    st.integers(0, 3),
)
def test_trichotomy_consistency_level1(xv, xbv, yv, ybv, r):
    """classify() returns STABILISE_FALSE only on j-low & (j+1)-empty, and
    STABILISE_TRUE only on n-proper (the Lemma 4 side conditions)."""
    config = {x(1): xv, xbar(1): xbv, y(1): yv, ybar(1): ybv, "R": r}
    result = classify(config, 1)
    if result.behaviour == MainBehaviour.STABILISE_TRUE:
        assert is_i_proper(config, 1)
    elif result.behaviour == MainBehaviour.STABILISE_FALSE:
        assert is_i_low(config, 1) and is_i_empty(config, 2, 1)
    else:
        assert not is_i_proper(config, 1)
        assert not (is_i_low(config, 1) and is_i_empty(config, 2, 1))


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 3), st.data())
def test_good_configurations_never_restart(n, data):
    """Every canonical C_m is classified as a stabilising configuration."""
    from repro.lipton import good_configuration

    m = data.draw(st.integers(min_value=0, max_value=threshold(n) + 20))
    config = good_configuration(n, m)
    result = classify(config, n)
    assert result.behaviour != MainBehaviour.RESTART
    assert result.behaviour == (
        MainBehaviour.STABILISE_TRUE
        if m >= threshold(n)
        else MainBehaviour.STABILISE_FALSE
    )
