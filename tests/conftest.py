"""Shared fixtures: small protocols and compiled pipelines, cached per
session (compilation of the larger pipelines takes seconds)."""

from __future__ import annotations

import pytest

from repro.baselines import (
    binary_threshold_protocol,
    majority_protocol,
    remainder_protocol,
    unary_threshold_protocol,
)
from repro.lipton import build_threshold_program
from repro.programs import figure1_program, simple_threshold_program
from repro.machines import lower_program
from repro.conversion import compile_program


@pytest.fixture(scope="session")
def majority():
    return majority_protocol()


@pytest.fixture(scope="session")
def unary5():
    return unary_threshold_protocol(5)


@pytest.fixture(scope="session")
def binary6():
    return binary_threshold_protocol(6)


@pytest.fixture(scope="session")
def remainder3():
    return remainder_protocol(3, 0)


@pytest.fixture(scope="session")
def figure1():
    return figure1_program()


@pytest.fixture(scope="session")
def thr2_program():
    return simple_threshold_program(2)


@pytest.fixture(scope="session")
def thr2_machine(thr2_program):
    return lower_program(thr2_program, "thr2")


@pytest.fixture(scope="session")
def thr2_pipeline(thr2_program):
    return compile_program(thr2_program, "thr2")


@pytest.fixture(scope="session")
def lipton1_program():
    return build_threshold_program(1)


@pytest.fixture(scope="session")
def lipton2_program():
    return build_threshold_program(2)


@pytest.fixture(scope="session")
def lipton3_program():
    return build_threshold_program(3)


@pytest.fixture(scope="session")
def lipton1_pipeline(lipton1_program):
    return compile_program(lipton1_program, "lipton1")
