"""Resized configurations cross the pool: a Multiset/DenseConfig that
grew or shrank under churn must pickle cleanly, and change hooks and
accepting counts must re-attach exactly on the other side."""

import pickle

from repro.baselines import binary_threshold_protocol, majority_protocol
from repro.core import Multiset
from repro.core.batched import DenseConfig
from repro.core.fastpath import EnabledIndex
from repro.resilience import (
    DenseView,
    FaultPlan,
    JoinAgents,
    LeaveAgents,
    MultisetView,
)
from repro.runtime.pool import parallel_map

RESIZE_PLAN = FaultPlan(
    [JoinAgents(at=0, agents=5, state="X"), LeaveAgents(at=0, agents=2)]
)


def _echo_roundtrip(config):
    """Module-level pool task: return the shipped config's observable
    state so the parent can compare against the original."""
    return (type(config).__name__, dict(config.items()), config.size)


class TestMultisetResizeRoundtrip:
    def _resized(self):
        config = Multiset({"X": 6, "Y": 3})
        RESIZE_PLAN.bind(5).fire(0, MultisetView(majority_protocol(), config))
        assert config.size == 12  # 9 + 5 - 2
        return config

    def test_pickle_after_resize(self):
        config = self._resized()
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.size == config.size

    def test_hooks_reattach_after_resize_roundtrip(self):
        pp = majority_protocol()
        config = Multiset({"X": 6, "Y": 3})
        index = EnabledIndex(pp)
        index.attach(config)
        RESIZE_PLAN.bind(5).fire(0, MultisetView(majority_protocol(), config))

        clone = pickle.loads(pickle.dumps(config))
        assert clone._watchers is None  # hooks never cross the boundary

        reattached = EnabledIndex(pp)
        reattached.attach(clone)
        reattached.validate(clone)
        assert reattached.population == config.size
        clone.inc("X")  # the re-attached hook is live
        reattached.validate(clone)

    def test_resized_config_crosses_a_real_pool(self):
        config = self._resized()
        [(kind, counts, size)] = parallel_map(
            _echo_roundtrip, [(config,)], jobs=2
        )
        assert kind == "Multiset"
        assert counts == dict(config.items())
        assert size == config.size


class TestDenseConfigResizeRoundtrip:
    def _resized(self):
        pp = binary_threshold_protocol(5)
        states = sorted(pp.states)
        dense = DenseConfig(states, {"p0": 10})
        accepting = [int(s in pp.accepting_states) for s in states]
        view = DenseView(dense, accepting)
        injector = FaultPlan(
            [JoinAgents(at=0, agents=4, state="p0"), LeaveAgents(at=0, agents=3)]
        ).bind(9)
        injector.fire(0, view)
        assert dense.size == 11
        assert view.size_delta == 1
        return pp, states, dense, accepting

    def test_pickle_after_resize(self):
        _, states, dense, _ = self._resized()
        clone = pickle.loads(pickle.dumps(dense))
        assert isinstance(clone, DenseConfig)
        assert clone == dense
        assert clone.size == dense.size
        assert clone.states == tuple(states)
        # The dense vector is rebuilt, not shipped stale.
        assert clone.cnt == dense.cnt

    def test_accepting_counts_reattach_after_roundtrip(self):
        pp, states, dense, accepting = self._resized()
        clone = pickle.loads(pickle.dumps(dense))
        assert clone._watchers is None

        # Re-derive the accepting count from the clone's dense vector:
        # it must match a from-scratch recount of the multiset contents.
        recount = sum(
            count for state, count in clone.items()
            if state in pp.accepting_states
        )
        via_cnt = sum(
            clone.cnt[clone.sid[s]] for s in states if s in pp.accepting_states
        )
        assert recount == via_cnt

        # A fresh DenseView on the clone tracks accepting deltas exactly.
        view = DenseView(clone, accepting)
        view.add("TOP", 2)
        assert view.accept_delta == 2
        view.remove("TOP", 1)
        assert view.accept_delta == 1
        assert clone.size == dense.size + 1

    def test_resized_dense_crosses_a_real_pool(self):
        _, _, dense, _ = self._resized()
        [(kind, counts, size)] = parallel_map(
            _echo_roundtrip, [(dense,)], jobs=2
        )
        assert kind == "DenseConfig"
        assert counts == dict(dense.items())
        assert size == dense.size
