"""Seed-tree determinism: a task's seed is a pure function of its path."""

from repro.core.simulation import derive_seed
from repro.runtime.seeds import SeedTree, derive_child, derive_seed_path


class TestDeriveChild:
    def test_deterministic(self):
        assert derive_child(42, "lemma4") == derive_child(42, "lemma4")

    def test_distinct_labels_distinct_seeds(self):
        seeds = {derive_child(0, label) for label in range(500)}
        seeds |= {derive_child(0, f"exp{i}") for i in range(500)}
        assert len(seeds) == 1000

    def test_distinct_bases_distinct_seeds(self):
        assert derive_child(0, "x") != derive_child(1, "x")

    def test_no_additive_structure(self):
        # The failure mode of the old ``base + attempt`` scheme: adjacent
        # bases sharing streams.  Hash derivation must not reproduce it.
        assert derive_child(0, 1) != derive_child(1, 0)

    def test_interior_separator_differs_from_leaf(self):
        # "/"-separated interior nodes never collide with the ":"-separated
        # leaf derivation of decide's derive_seed.
        assert derive_child(7, 3) != derive_seed(7, 3)

    def test_collision_grid(self):
        grid = {
            derive_seed_path(base, "exp", n, trial)
            for base in range(4)
            for n in range(5)
            for trial in range(10)
        }
        assert len(grid) == 4 * 5 * 10


class TestDeriveSeedPath:
    def test_empty_path_is_base(self):
        assert derive_seed_path(99) == 99

    def test_folds_left_to_right(self):
        assert derive_seed_path(7, "a", 2, "b") == derive_child(
            derive_child(derive_child(7, "a"), 2), "b"
        )

    def test_path_position_matters(self):
        assert derive_seed_path(0, "a", "b") != derive_seed_path(0, "b", "a")


class TestSeedTree:
    def test_child_is_pure(self):
        tree = SeedTree(42)
        assert tree.child("convergence", 2) == tree.child("convergence", 2)
        assert tree.child("convergence").child(2) == tree.child("convergence", 2)
        assert tree.path == ()  # children never mutate the parent

    def test_value_matches_path_fold(self):
        assert SeedTree(42, ("lemma4", 3)).value == derive_seed_path(42, "lemma4", 3)

    def test_leaf_seed_matches_decide_derivation(self):
        # SeedTree(base).seed(i) must reproduce the attempt seeds decide
        # has pinned since the hash-derivation change.
        for base in (0, 1, 12345):
            for attempt in range(5):
                assert SeedTree(base).seed(attempt) == derive_seed(base, attempt)

    def test_sibling_subtrees_are_independent(self):
        tree = SeedTree(0)
        a = [tree.child("a").seed(i) for i in range(50)]
        b = [tree.child("b").seed(i) for i in range(50)]
        assert not set(a) & set(b)

    def test_hash_and_repr(self):
        assert hash(SeedTree(1, ("x",))) == hash(SeedTree(1, ("x",)))
        assert repr(SeedTree(1, ("x", 2))) == "SeedTree(1/x/2)"
