"""Content-addressed artifact cache: fingerprints, layers, robustness."""

import pickle

import pytest

from repro.baselines import binary_threshold_protocol, majority_protocol
from repro.core.fastpath import TransitionTable
from repro.core.protocol import PopulationProtocol
from repro.lipton.construction import build_threshold_program
from repro.runtime.cache import (
    ArtifactCache,
    cached_compile_program,
    cached_compile_threshold_protocol,
    cached_transition_table,
    program_fingerprint,
    protocol_fingerprint,
)


class TestFingerprints:
    def test_protocol_fingerprint_stable(self):
        assert protocol_fingerprint(majority_protocol()) == protocol_fingerprint(
            majority_protocol()
        )

    def test_protocol_fingerprint_ignores_name(self):
        pp = majority_protocol()
        renamed = PopulationProtocol(
            pp.states, pp.transitions, pp.input_states, pp.accepting_states, "other"
        )
        assert protocol_fingerprint(pp) == protocol_fingerprint(renamed)

    def test_protocol_fingerprint_sees_structure(self):
        assert protocol_fingerprint(binary_threshold_protocol(5)) != (
            protocol_fingerprint(binary_threshold_protocol(6))
        )

    def test_protocol_fingerprint_sees_accepting_set(self):
        pp = majority_protocol()
        flipped = PopulationProtocol(
            pp.states,
            pp.transitions,
            pp.input_states,
            pp.states - pp.accepting_states,
            pp.name,
        )
        assert protocol_fingerprint(pp) != protocol_fingerprint(flipped)

    def test_program_fingerprint_invalidates_on_change(self):
        assert program_fingerprint(build_threshold_program(1)) != (
            program_fingerprint(build_threshold_program(2))
        )
        assert program_fingerprint(build_threshold_program(2)) == (
            program_fingerprint(build_threshold_program(2))
        )


class TestArtifactCache:
    def test_memory_roundtrip(self):
        cache = ArtifactCache()
        assert cache.get("k") is None
        cache.put("k", [1, 2])
        assert cache.get("k") == [1, 2]
        assert cache.stats() == {
            "hits": 1,
            "disk_hits": 0,
            "misses": 1,
            "entries": 1,
            "corrupt_entries": 0,
        }

    def test_get_or_build_builds_once(self):
        cache = ArtifactCache()
        calls = []
        build = lambda: calls.append(1) or "artifact"
        assert cache.get_or_build("k", build) == "artifact"
        assert cache.get_or_build("k", build) == "artifact"
        assert len(calls) == 1

    def test_disk_layer_survives_process_memory(self, tmp_path):
        writer = ArtifactCache(tmp_path)
        writer.put("k", {"compiled": True})
        reader = ArtifactCache(tmp_path)  # fresh memory, same directory
        assert reader.get("k") == {"compiled": True}
        assert reader.disk_hits == 1
        assert reader.get("k") == {"compiled": True}  # now a memory hit
        assert reader.hits == 1

    def test_corrupt_disk_entry_is_quarantined(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        (tmp_path / "bad.pkl").write_bytes(b"not a pickle")
        assert cache.get("bad") is None
        assert cache.stats()["corrupt_entries"] == 1
        # Quarantined aside, not deleted: forensics keep the bytes.
        assert (tmp_path / "bad.pkl.corrupt").exists()
        assert not (tmp_path / "bad.pkl").exists()
        cache.put("bad", "rebuilt")  # republishes a good entry
        assert ArtifactCache(tmp_path).get("bad") == "rebuilt"

    def test_flipped_bit_fails_checksum(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("k", {"compiled": True})
        path = tmp_path / "k.pkl"
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # single corrupted byte in the payload
        path.write_bytes(bytes(blob))
        reader = ArtifactCache(tmp_path)
        assert reader.get("k") is None
        assert reader.stats()["corrupt_entries"] == 1
        assert (tmp_path / "k.pkl.corrupt").exists()

    def test_truncated_entry_fails_framing(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("k", list(range(100)))
        path = tmp_path / "k.pkl"
        path.write_bytes(path.read_bytes()[:10])  # torn write
        reader = ArtifactCache(tmp_path)
        assert reader.get("k") is None
        assert reader.stats()["corrupt_entries"] == 1

    def test_clear_empties_both_layers(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put("k", 1)
        cache.clear()
        assert cache.get("k") is None
        assert not list(tmp_path.glob("*.pkl"))


class TestCachedCompilations:
    def test_transition_table_shared_across_instances(self):
        cache = ArtifactCache()
        pp1 = majority_protocol()
        pp2 = majority_protocol()
        t1 = cached_transition_table(pp1, cache)
        t2 = cached_transition_table(pp2, cache)
        assert isinstance(t1, TransitionTable)
        assert t1 is t2  # same fingerprint, one compilation
        assert pp2._fastpath_table is t2  # re-attached for the fast path

    def test_transition_table_prefers_attached(self):
        cache = ArtifactCache()
        pp = majority_protocol()
        attached = TransitionTable(pp)
        pp._fastpath_table = attached
        assert cached_transition_table(pp, cache) is attached
        assert cache.stats()["entries"] == 0

    def test_cached_pipeline_identical_and_memoised(self):
        cache = ArtifactCache()
        program = build_threshold_program(1)
        first = cached_compile_program(program, "lipton-n1", cache=cache)
        second = cached_compile_program(
            build_threshold_program(1), "lipton-n1", cache=cache
        )
        assert second is first
        assert first.protocol.states

    def test_cross_process_disk_warming(self, tmp_path):
        """A second *process* sharing ``REPRO_CACHE_DIR`` compiles nothing:
        it warms from the disk layer, and the ambient tracer's
        ``cache.disk_hit`` counter (not ``cache.memory_hit``) records it."""
        import json
        import os
        import subprocess
        import sys

        script = (
            "import json\n"
            "from repro.observability.metrics import Metrics\n"
            "from repro.observability.spans import SpanTracer, activate\n"
            "from repro.runtime.cache import (\n"
            "    artifact_cache, cached_compile_threshold_protocol)\n"
            "metrics = Metrics()\n"
            "with activate(SpanTracer(metrics=metrics)):\n"
            "    result = cached_compile_threshold_protocol(1)\n"
            "stats = artifact_cache().stats()\n"
            "counters = {\n"
            "    name: metrics.counter(name).value\n"
            "    for name in ('cache.memory_hit', 'cache.disk_hit', 'cache.miss')\n"
            "}\n"
            "print(json.dumps({'states': len(result.protocol.states),\n"
            "                  'stats': stats, 'counters': counters}))\n"
        )
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(tmp_path)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)

        def run():
            proc = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                capture_output=True,
                text=True,
                timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            return json.loads(proc.stdout.strip().splitlines()[-1])

        cold = run()
        assert cold["stats"]["misses"] >= 1
        assert cold["counters"]["cache.miss"] >= 1
        assert cold["counters"]["cache.disk_hit"] == 0

        warm = run()
        assert warm["states"] == cold["states"]
        assert warm["stats"]["disk_hits"] >= 1
        assert warm["stats"]["misses"] == 0
        assert warm["counters"]["cache.disk_hit"] == 1
        assert warm["counters"]["cache.memory_hit"] == 0
        assert warm["counters"]["cache.miss"] == 0

    def test_cached_threshold_pipeline_disk_roundtrip(self, tmp_path):
        cold = cached_compile_threshold_protocol(1, cache=ArtifactCache(tmp_path))
        warm_cache = ArtifactCache(tmp_path)
        warm = cached_compile_threshold_protocol(1, cache=warm_cache)
        assert warm_cache.disk_hits == 1
        assert warm.protocol.states == cold.protocol.states
        assert protocol_fingerprint(warm.protocol) == protocol_fingerprint(
            cold.protocol
        )
