"""Pickle-safe transport: protocols and configurations cross a process
boundary stripped of their process-local derived structure (change hooks,
compiled tables), which the other side rebuilds."""

import pickle

from repro.baselines import binary_threshold_protocol, majority_protocol
from repro.core import Multiset, simulate
from repro.core.fastpath import EnabledIndex, get_table


class TestMultisetPickling:
    def test_plain_roundtrip(self):
        config = Multiset({"a": 3, "b": 1})
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.size == 4

    def test_hook_attached_multiset_roundtrips(self):
        # The regression this guards: Multiset has __slots__ and carries
        # live EnabledIndex change hooks in _watchers; pickling it must
        # drop the hooks (they close over the index's arrays) rather than
        # fail or ship a broken callback.
        pp = majority_protocol()
        config = Multiset({"X": 5, "Y": 3})
        index = EnabledIndex(pp)
        index.attach(config)
        assert config._watchers  # the hook really is installed

        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.size == config.size
        assert clone._watchers is None  # transported copies start unobserved

        # Mutating the clone must not reach the original's index...
        before = index.total
        clone.inc("X")
        assert index.total == before
        # ...and the original's hook still tracks the original exactly.
        config.inc("Y")
        config.dec("X")
        fresh = EnabledIndex(pp)
        fresh.rebuild(config)
        assert index.enabled_weights() == fresh.enabled_weights()

    def test_index_rebuilds_and_reattaches_on_clone(self):
        pp = majority_protocol()
        config = Multiset({"X": 4, "Y": 4})
        EnabledIndex(pp).attach(config)
        clone = pickle.loads(pickle.dumps(config))

        index = EnabledIndex(pp)
        index.attach(clone)
        expected = EnabledIndex(pp)
        expected.rebuild(Multiset({"X": 4, "Y": 4}))
        assert index.enabled_weights() == expected.enabled_weights()
        clone.inc("X")  # the re-attached hook is live
        assert index.enabled_weights() != expected.enabled_weights()


class TestProtocolPickling:
    def test_roundtrip_preserves_definition(self):
        pp = binary_threshold_protocol(5)
        clone = pickle.loads(pickle.dumps(pp))
        assert clone.states == pp.states
        assert clone.transitions == pp.transitions
        assert clone.input_states == pp.input_states
        assert clone.accepting_states == pp.accepting_states
        assert clone.name == pp.name

    def test_roundtrip_drops_compiled_table(self):
        pp = binary_threshold_protocol(5)
        get_table(pp)  # attach the compiled fast-path table
        assert hasattr(pp, "_fastpath_table")
        clone = pickle.loads(pickle.dumps(pp))
        assert not hasattr(clone, "_fastpath_table")

    def test_roundtrip_content_address_unchanged(self):
        from repro.runtime.cache import protocol_fingerprint

        pp = binary_threshold_protocol(5)
        get_table(pp)
        clone = pickle.loads(pickle.dumps(pp))
        assert protocol_fingerprint(clone) == protocol_fingerprint(pp)

    def test_clone_simulates_identically(self):
        pp = binary_threshold_protocol(5)
        get_table(pp)
        clone = pickle.loads(pickle.dumps(pp))
        kwargs = dict(seed=3, max_interactions=5_000, convergence_window=2_000)
        original = simulate(pp, Multiset({"p0": 7}), **kwargs)
        transported = simulate(clone, Multiset({"p0": 7}), **kwargs)
        assert transported.verdict == original.verdict
        assert transported.interactions == original.interactions
