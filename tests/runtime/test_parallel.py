"""Parallel execution semantics: fan-out is invisible in results,
first-verdict cancellation works, and worker metrics merge back."""

import pytest

from repro.baselines import binary_threshold_protocol, majority_protocol
from repro.core import Multiset, decide
from repro.observability.metrics import MetricsObserver
from repro.runtime.pool import (
    decide_parallel,
    merge_worker_metrics,
    parallel_map,
    resolve_jobs,
)


def square(x):
    return x * x


def add(a, b):
    return a + b


class TestResolveJobs:
    def test_default_is_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert resolve_jobs(None) == 3
        assert resolve_jobs(2) == 2  # explicit argument wins

    def test_zero_means_all_cores(self):
        import os

        assert resolve_jobs(0) == (os.cpu_count() or 1)

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert resolve_jobs(None) == 1


class TestParallelMap:
    def test_matches_comprehension_in_order(self):
        tasks = [(i,) for i in range(10)]
        assert parallel_map(square, tasks, jobs=4) == [i * i for i in range(10)]

    def test_multi_argument_tasks(self):
        tasks = [(i, 10 * i) for i in range(6)]
        assert parallel_map(add, tasks, jobs=2) == [11 * i for i in range(6)]

    def test_sequential_path_no_pool(self):
        # jobs=1 must not touch multiprocessing at all: an unpicklable
        # closure is fine sequentially.
        fn = lambda x: x + 1
        assert parallel_map(fn, [(1,), (2,)], jobs=1) == [2, 3]


class TestDecideParallelDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 42])
    def test_decide_jobs4_equals_jobs1(self, seed):
        pp = binary_threshold_protocol(5)
        config = Multiset({"p0": 7})
        kwargs = dict(
            seed=seed, attempts=4, max_interactions=200_000,
            convergence_window=20_000,
        )
        assert decide(pp, config, jobs=4, **kwargs) == decide(
            pp, config, jobs=1, **kwargs
        )

    def test_decide_env_jobs(self, monkeypatch):
        pp = majority_protocol()
        config = Multiset({"X": 6, "Y": 3})
        kwargs = dict(seed=7, attempts=3, max_interactions=100_000)
        sequential = decide(pp, config, **kwargs)
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert decide(pp, config, **kwargs) == sequential


class TestDecideParallelCancellation:
    def test_first_verdict_wins_and_rest_cancelled(self):
        # Plenty of attempts, few workers: the first attempt's verdict
        # must land before most attempts ever start, so they cancel.
        pp = binary_threshold_protocol(5)
        config = Multiset({"p0": 7})
        stats = {}
        verdict = decide_parallel(
            pp,
            config,
            base=0,
            attempts=12,
            jobs=2,
            stats=stats,
            max_interactions=200_000,
            convergence_window=20_000,
        )
        assert verdict is True
        assert stats["launched"] == 12
        assert stats["cancelled"] > 0
        assert stats["completed"] >= 1
        # Every launched attempt is accounted for: no orphaned workers
        # (the executor shutdown inside decide_parallel waits on the rest).
        assert (
            stats["completed"] + stats["cancelled"] + stats["failed"]
            == stats["launched"]
        )
        assert stats["failed"] == 0


class TestMetricsMerge:
    def test_worker_metrics_reach_parent_registry(self):
        pp = binary_threshold_protocol(5)
        config = Multiset({"p0": 7})
        observer = MetricsObserver()
        verdict = decide(
            pp,
            config,
            seed=0,
            attempts=4,
            jobs=2,
            observer=observer,
            max_interactions=200_000,
            convergence_window=20_000,
        )
        assert verdict is True
        counters = observer.metrics.to_dict()["counters"]
        assert counters.get("interactions", 0) > 0

    def test_parallel_metrics_match_sequential_for_winning_prefix(self):
        # With jobs=2 but a verdict on attempt 0, at most attempt 1 extra
        # runs; the merged interaction count is at least the sequential one.
        pp = binary_threshold_protocol(5)
        config = Multiset({"p0": 7})
        seq = MetricsObserver()
        par = MetricsObserver()
        kwargs = dict(
            seed=3, attempts=3, max_interactions=200_000,
            convergence_window=20_000,
        )
        decide(pp, config, jobs=1, observer=seq, **kwargs)
        decide(pp, config, jobs=2, observer=par, **kwargs)
        seq_interactions = seq.metrics.to_dict()["counters"]["interactions"]
        par_interactions = par.metrics.to_dict()["counters"]["interactions"]
        assert par_interactions >= seq_interactions

    def test_merge_worker_metrics_folds_payload(self):
        observer = MetricsObserver()
        payload = {
            "counters": {"interactions": 5},
            "gauges": {"population": 9},
            "histograms": {
                "wall_seconds": {"count": 2, "total": 1.0, "min": 0.4, "max": 0.6}
            },
        }
        merge_worker_metrics(observer, payload)
        merge_worker_metrics(observer, payload)
        snapshot = observer.metrics.to_dict()
        assert snapshot["counters"]["interactions"] == 10
        assert snapshot["gauges"]["population"] == 9
        assert snapshot["histograms"]["wall_seconds"]["count"] == 4


class TestParallelDrivers:
    def test_convergence_driver_matches_sequential(self):
        from repro.experiments.convergence import run_convergence

        sequential = run_convergence(2, trials=2, seed=0, jobs=1)
        parallel = run_convergence(2, trials=2, seed=0, jobs=2)
        assert parallel.samples == sequential.samples

    def test_lemma4_driver_matches_sequential(self):
        from repro.experiments.lemma4 import run_lemma4

        sequential = run_lemma4(1, 2, seed=0, jobs=1)
        parallel = run_lemma4(1, 2, seed=0, jobs=2)
        assert parallel.trials == sequential.trials

    def test_theorem3_driver_matches_sequential(self):
        from repro.experiments.theorem3 import run_theorem3_decisions

        sequential = run_theorem3_decisions(1, seed=0, jobs=1)
        parallel = run_theorem3_decisions(1, seed=0, jobs=2)
        assert parallel == sequential
        assert all(t.correct for t in parallel)

    def test_table1_driver_matches_sequential(self):
        from repro.experiments.table1 import run_table1

        sequential = run_table1(4, jobs=1)
        parallel = run_table1(4, jobs=2)
        assert parallel.rows == sequential.rows
