"""The distributed runtime: wire framing, the resumable task ledger,
loopback bit-equivalence against sequential execution, and the
resilience ladder (worker loss, lease expiry, no-worker degradation,
coordinator crash + resume)."""

import os
import pickle
import socket
import struct
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.baselines import binary_threshold_protocol
from repro.core import Multiset, decide
from repro.observability.metrics import Metrics
from repro.observability.spans import SpanTracer, activate
from repro.runtime.distributed import (
    Coordinator,
    FrameDecoder,
    NoWorkersError,
    RemoteTaskError,
    distributed_map,
    encode_frame,
    format_address,
    get_cluster,
    parse_address,
    recv_frame,
    send_frame,
    spawn_loopback_worker,
)
from repro.runtime.ledger import (
    TaskLedger,
    job_fingerprint,
    resolve_ledger,
    task_key,
)
from repro.runtime.pool import parallel_map

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Worker subprocesses import task functions by reference, so everything
#: below must stay module-level and picklable.


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"boom {x}")


def marked_square(x, marker_dir):
    """Square ``x`` and leave a unique per-execution marker file, so
    tests can count how many times (and in which process) a task ran."""
    directory = Path(marker_dir)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"task{x}-{os.getpid()}-{os.urandom(4).hex()}").touch()
    return x * x


def slow_marked_square(x, marker_dir, delay):
    result = marked_square(x, marker_dir)
    time.sleep(delay)
    return result


def stall_task_zero_once(x, marker_dir):
    """Task 0 sleeps (nearly) forever on its *first* execution; its
    re-execution — on the other worker, after the lease expires — returns
    immediately.  The flag lives on the shared filesystem, so loopback
    workers see each other's attempts.  Every other task is fast."""
    if x != 0:
        return x * x
    directory = Path(marker_dir)
    directory.mkdir(parents=True, exist_ok=True)
    flag = directory / "stall-0"
    if not flag.exists():
        flag.touch()
        time.sleep(120)
    return 0


def _spawn_workers(coordinator, count, *, wait=True, timeout=30.0):
    procs = [
        spawn_loopback_worker(
            coordinator.address, extra_pythonpath=[str(REPO_ROOT)]
        )
        for _ in range(count)
    ]
    if wait:
        deadline = time.monotonic() + timeout
        while coordinator.workers_alive() < count:
            if time.monotonic() > deadline:
                raise TimeoutError("loopback workers failed to connect")
            coordinator.poll()
            time.sleep(0.05)
    return procs


def _reap(coordinator, procs, timeout=15.0):
    coordinator.close()
    for proc in procs:
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.terminate()
            proc.wait(timeout=timeout)


def _shape(node):
    """A span tree stripped to its structure: (name, count, children)."""
    return (
        node.get("name"),
        node.get("count"),
        [_shape(child) for child in node.get("children", [])],
    )


# ----------------------------------------------------------------------
# Wire framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            message = {"type": "task", "id": 7, "args": (1, "x"), "blob": b"\x00" * 1000}
            send_frame(a, message)
            assert recv_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_decoder_handles_arbitrary_fragmentation(self):
        messages = [{"i": i, "payload": "x" * i} for i in range(5)]
        blob = b"".join(encode_frame(m) for m in messages)
        for chunk in (1, 3, 7, len(blob)):
            decoder = FrameDecoder()
            out = []
            for start in range(0, len(blob), chunk):
                out.extend(decoder.feed(blob[start : start + chunk]))
            assert out == messages

    def test_bad_magic_rejected(self):
        frame = encode_frame({"ok": True})
        corrupted = b"XXXX" + frame[4:]
        with pytest.raises(Exception):
            FrameDecoder().feed(corrupted)

    def test_oversized_length_rejected(self):
        header = struct.pack(">4sI", b"RPDF", 1 << 30)
        with pytest.raises(Exception):
            FrameDecoder().feed(header + b"\x00" * 16)

    def test_eof_mid_frame_returns_none(self):
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame({"k": 1})[:5])
            a.close()
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_parse_format_address(self):
        assert parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_address(":0") == ("127.0.0.1", 0)
        assert format_address("10.0.0.1", 80) == "10.0.0.1:80"
        with pytest.raises(ValueError):
            parse_address("no-port")


# ----------------------------------------------------------------------
# Resumable ledger
# ----------------------------------------------------------------------
class TestLedger:
    def test_task_key_is_path_string(self):
        assert task_key(("decide", 5, 0)) == "decide/5/0"

    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "job.ledger"
        ledger = TaskLedger(path, "fp1")
        ledger.record("a/0", {"v": 1})
        ledger.record("a/1", [1, 2])
        reloaded = TaskLedger(path, "fp1")
        assert "a/0" in reloaded and reloaded.get("a/1") == [1, 2]
        assert len(reloaded) == 2

    def test_rerecord_is_noop(self, tmp_path):
        path = tmp_path / "job.ledger"
        ledger = TaskLedger(path, "fp1")
        ledger.record("k", 1)
        size = path.stat().st_size
        ledger.record("k", 2)
        assert path.stat().st_size == size
        assert TaskLedger(path, "fp1").get("k") == 1

    def test_fingerprint_mismatch_ignored_and_rotated(self, tmp_path):
        path = tmp_path / "job.ledger"
        TaskLedger(path, "fp-old").record("k", "old")
        fresh = TaskLedger(path, "fp-new")
        assert len(fresh) == 0  # stale results never leak
        fresh.record("k", "new")
        assert path.with_suffix(".ledger.stale").exists()
        assert TaskLedger(path, "fp-new").get("k") == "new"

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "job.ledger"
        ledger = TaskLedger(path, "fp")
        ledger.record("k0", 0)
        ledger.record("k1", 1)
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])  # crash mid-append
        survivor = TaskLedger(path, "fp")
        assert survivor.get("k0") == 0
        assert "k1" not in survivor

    def test_job_fingerprint_sees_everything(self):
        base = job_fingerprint(square, [("t", 0)], [(3,)])
        assert job_fingerprint(square, [("t", 0)], [(4,)]) != base
        assert job_fingerprint(square, [("u", 0)], [(3,)]) != base
        assert job_fingerprint(boom, [("t", 0)], [(3,)]) != base
        assert job_fingerprint(square, [("t", 0)], [(3,)]) == base

    def test_resolve_ledger_precedence(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
        assert resolve_ledger(square, [("t", 0)], [(1,)]) is None
        explicit = TaskLedger(tmp_path / "x.ledger", "fp")
        assert resolve_ledger(square, [("t", 0)], [(1,)], ledger=explicit) is explicit
        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
        opened = resolve_ledger(square, [("t", 0)], [(1,)])
        assert opened is not None
        assert str(opened.path).startswith(str(tmp_path))

    def test_parallel_map_journals_and_resumes(self, tmp_path):
        tasks = [(i, str(tmp_path / "markers")) for i in range(4)]
        paths = [("grid", i) for i in range(4)]
        ledger_dir = tmp_path / "ledger"
        first = parallel_map(
            marked_square,
            tasks,
            jobs=1,
            paths=paths,
            ledger=resolve_ledger(
                marked_square, paths, tasks, directory=ledger_dir
            ),
        )
        markers = list((tmp_path / "markers").iterdir())
        assert first == [0, 1, 4, 9] and len(markers) == 4
        second = parallel_map(
            marked_square,
            tasks,
            jobs=1,
            paths=paths,
            ledger=resolve_ledger(
                marked_square, paths, tasks, directory=ledger_dir
            ),
        )
        assert second == first
        assert len(list((tmp_path / "markers").iterdir())) == 4  # no re-runs


# ----------------------------------------------------------------------
# Loopback equivalence (two real worker subprocesses)
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def cluster():
    coordinator = get_cluster("127.0.0.1:0")
    procs = _spawn_workers(coordinator, 2)
    yield coordinator
    _reap(coordinator, procs)


class TestLoopbackEquivalence:
    def test_map_matches_sequential(self, cluster):
        tasks = [(i,) for i in range(12)]
        assert distributed_map(square, tasks, addr=cluster.address) == [
            square(i) for i in range(12)
        ]

    def test_remote_exception_propagates(self, cluster):
        with pytest.raises((ValueError, RemoteTaskError), match="boom"):
            distributed_map(boom, [(1,)], addr=cluster.address)

    def test_span_tree_equals_jobs1(self, cluster):
        tasks = [(i,) for i in range(6)]
        labels = [f"task:{i}" for i in range(6)]

        sequential = SpanTracer()
        with activate(sequential):
            parallel_map(square, tasks, jobs=1, span_labels=labels)

        distributed = SpanTracer(metrics=Metrics())
        with activate(distributed):
            out = distributed_map(
                square, tasks, addr=cluster.address, span_labels=labels
            )
        assert out == [i * i for i in range(6)]
        assert _shape(distributed.tree()) == _shape(sequential.tree())

    def test_decide_matches_jobs1(self, cluster):
        pp = binary_threshold_protocol(5)
        config = Multiset({"p0": 7})
        kwargs = dict(
            seed=3,
            attempts=4,
            max_interactions=200_000,
            convergence_window=20_000,
        )
        sequential = decide(pp, config, jobs=1, **kwargs)
        stats = {}
        verdict = decide(pp, config, jobs=cluster.address, stats=stats, **kwargs)
        assert verdict == sequential
        assert stats["launched"] == 4
        assert (
            stats["launched"]
            == stats["completed"] + stats["cancelled"] + stats["failed"]
        )

    def test_env_routes_decide_to_cluster(self, cluster, monkeypatch):
        pp = binary_threshold_protocol(5)
        config = Multiset({"p0": 7})
        kwargs = dict(
            seed=1, attempts=3, max_interactions=200_000,
            convergence_window=20_000,
        )
        sequential = decide(pp, config, jobs=1, **kwargs)
        monkeypatch.setenv("REPRO_JOBS", cluster.address)
        dispatched_before = cluster.metrics.counter("dist.dispatched").value
        assert decide(pp, config, **kwargs) == sequential
        assert cluster.metrics.counter("dist.dispatched").value > dispatched_before

    def test_ledger_skips_journalled_tasks(self, cluster, tmp_path):
        tasks = [(i, str(tmp_path / "markers")) for i in range(6)]
        paths = [("grid", i) for i in range(6)]
        ledger_dir = tmp_path / "ledger"

        def open_ledger():
            return resolve_ledger(
                marked_square, paths, tasks, directory=ledger_dir
            )

        first = distributed_map(
            marked_square,
            tasks,
            addr=cluster.address,
            paths=paths,
            ledger=open_ledger(),
        )
        assert first == [i * i for i in range(6)]
        executed = len(list((tmp_path / "markers").iterdir()))
        assert executed == 6
        before = cluster.metrics.counter("dist.ledger_hits").value
        second = distributed_map(
            marked_square,
            tasks,
            addr=cluster.address,
            paths=paths,
            ledger=open_ledger(),
        )
        assert second == first
        assert len(list((tmp_path / "markers").iterdir())) == 6
        assert cluster.metrics.counter("dist.ledger_hits").value == before + 6


# ----------------------------------------------------------------------
# Resilience ladder
# ----------------------------------------------------------------------
class TestWorkerLoss:
    def test_killed_worker_requeues_to_survivor(self, tmp_path):
        coordinator = get_cluster("127.0.0.1:0")
        procs = _spawn_workers(coordinator, 2)
        try:
            # Kill one connected worker outright; its shard requeues to
            # the survivor mid-run and results are unchanged.
            procs[0].kill()
            procs[0].wait(timeout=15)
            tasks = [(i, str(tmp_path / "markers"), 0.05) for i in range(8)]
            results = distributed_map(
                slow_marked_square,
                tasks,
                addr=coordinator.address,
                paths=[("kill", i) for i in range(8)],
            )
            assert results == [i * i for i in range(8)]
            assert coordinator.metrics.counter("dist.workers_lost").value >= 1
        finally:
            _reap(coordinator, procs)

    def test_lease_expiry_redispatches(self, tmp_path):
        coordinator = get_cluster("127.0.0.1:0")
        procs = _spawn_workers(coordinator, 2)
        try:
            tasks = [(i, str(tmp_path / "markers")) for i in range(4)]
            results = distributed_map(
                stall_task_zero_once,
                tasks,
                addr=coordinator.address,
                paths=[("stall", i) for i in range(4)],
                lease_timeout=2.0,
            )
            assert results == [i * i for i in range(4)]
            assert coordinator.metrics.counter("dist.lease_expired").value >= 1
        finally:
            for proc in procs:
                proc.kill()  # one holds a 120s sleep; don't wait politely
            coordinator.close()
            for proc in procs:
                proc.wait(timeout=15)


class TestDegradation:
    def test_no_workers_falls_back_in_process(self):
        coordinator = get_cluster("127.0.0.1:0")
        try:
            metrics = Metrics()
            with activate(SpanTracer(metrics=metrics)):
                results = distributed_map(
                    square,
                    [(i,) for i in range(5)],
                    addr=coordinator.address,
                    connect_grace=0.2,
                )
            assert results == [i * i for i in range(5)]
            assert metrics.counter("dist.degraded").value == 1
        finally:
            coordinator.close()

    def test_no_workers_decide_falls_back(self):
        coordinator = get_cluster("127.0.0.1:0", connect_grace=0.2)
        try:
            pp = binary_threshold_protocol(5)
            config = Multiset({"p0": 7})
            kwargs = dict(
                seed=3, attempts=4, max_interactions=200_000,
                convergence_window=20_000,
            )
            assert decide(pp, config, jobs=coordinator.address, **kwargs) == decide(
                pp, config, jobs=1, **kwargs
            )
            assert coordinator.metrics.counter("dist.degraded").value >= 1
        finally:
            coordinator.close()

    def test_closed_coordinator_still_answers(self):
        coordinator = Coordinator("127.0.0.1:0")
        coordinator.close()
        with pytest.raises(NoWorkersError):
            coordinator.run(square, [(1,)], paths=[("t", 0)], labels=["t"])


# ----------------------------------------------------------------------
# Coordinator crash + resume (the resumability acceptance test)
# ----------------------------------------------------------------------
_GRID_SCRIPT = """
import json, sys
from repro.runtime.distributed import distributed_map, get_cluster, \\
    spawn_loopback_worker, shutdown_clusters

marker_dir, ledger_dir, repo_root = sys.argv[1:4]
import os
os.environ["REPRO_LEDGER_DIR"] = ledger_dir
coordinator = get_cluster("127.0.0.1:0")
proc = spawn_loopback_worker(coordinator.address, extra_pythonpath=[repo_root])
from tests.runtime.test_distributed import slow_marked_square
tasks = [(i, marker_dir, 0.4) for i in range(8)]
results = distributed_map(
    slow_marked_square,
    tasks,
    addr=coordinator.address,
    paths=[("grid", i) for i in range(8)],
)
print("RESULTS " + json.dumps(results), flush=True)
shutdown_clusters()
proc.wait(timeout=30)
"""


class TestCoordinatorResume:
    def test_kill_midgrid_then_resume(self, tmp_path):
        """Kill the whole coordinator process partway through a journalled
        grid; a restarted run resumes from the ledger, re-executes only
        what the journal lost, and returns identical results."""
        marker_dir = tmp_path / "markers"
        ledger_dir = tmp_path / "ledger"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        )
        argv = [
            sys.executable,
            "-c",
            _GRID_SCRIPT,
            str(marker_dir),
            str(ledger_dir),
            str(REPO_ROOT),
        ]

        first = subprocess.Popen(
            argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL
        )
        try:
            deadline = time.monotonic() + 120
            while True:
                done = len(list(marker_dir.iterdir())) if marker_dir.exists() else 0
                if done >= 3:
                    break
                if first.poll() is not None or time.monotonic() > deadline:
                    pytest.fail("grid finished or stalled before the kill")
                time.sleep(0.05)
        finally:
            first.kill()
            first.wait(timeout=15)

        ledgers = list(ledger_dir.glob("job-*.ledger"))
        assert len(ledgers) == 1
        journalled = TaskLedger(
            ledgers[0], ledgers[0].stem.replace("job-", "")
        )
        assert 0 < len(journalled) < 8  # genuinely mid-grid
        markers_before = {
            path.name for path in marker_dir.iterdir()
        }

        second = subprocess.run(
            argv, env=env, capture_output=True, text=True, timeout=300
        )
        assert second.returncode == 0, second.stderr
        line = [
            l for l in second.stdout.splitlines() if l.startswith("RESULTS ")
        ][-1]
        import json

        assert json.loads(line[len("RESULTS "):]) == [i * i for i in range(8)]

        # Journalled tasks were not re-executed: their original markers
        # are still the only ones, and every journalled key kept exactly
        # the result it had.
        markers_after = {path.name for path in marker_dir.iterdir()}
        assert markers_before <= markers_after
        for key, value in journalled.results.items():
            index = int(key.rsplit("/", 1)[1])
            assert value == index * index
            executions = [
                name for name in markers_after if name.startswith(f"task{index}-")
            ]
            originals = [
                name for name in markers_before if name.startswith(f"task{index}-")
            ]
            assert executions == originals  # no second execution
