"""Tests for the classic unary threshold protocol (Theta(k) states)."""

import pytest

from repro.baselines import unary_state_count, unary_threshold_protocol
from repro.core import Multiset, decide, stabilisation_verdict


class TestStructure:
    @pytest.mark.parametrize("k", [1, 2, 5, 9])
    def test_state_count_is_k_plus_one(self, k):
        pp = unary_threshold_protocol(k)
        assert pp.state_count == k + 1 == unary_state_count(k)

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            unary_threshold_protocol(0)

    def test_witness_state_is_accepting(self):
        pp = unary_threshold_protocol(4)
        assert pp.accepting_states == frozenset({4})

    def test_value_conservation_below_k(self):
        """Merging transitions conserve the summed value until k fires."""
        pp = unary_threshold_protocol(5)
        for t in pp.transitions:
            if t.q2 != 5:  # pre-witness transitions
                assert t.q + t.r == t.q2 + t.r2


class TestExact:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_all_populations_up_to_k_plus_2(self, k):
        pp = unary_threshold_protocol(k)
        for x in range(1, k + 3):
            assert stabilisation_verdict(pp, Multiset({1: x})) is (x >= k)

    def test_single_agent_k1(self):
        pp = unary_threshold_protocol(1)
        assert stabilisation_verdict(pp, Multiset({1: 1})) is True

    def test_single_agent_k2(self):
        pp = unary_threshold_protocol(2)
        assert stabilisation_verdict(pp, Multiset({1: 1})) is False


class TestSampled:
    def test_well_above(self):
        pp = unary_threshold_protocol(7)
        assert decide(pp, Multiset({1: 30}), seed=1) is True

    def test_just_below(self):
        pp = unary_threshold_protocol(7)
        assert decide(pp, Multiset({1: 6}), seed=1) is False


class TestOneAwareness:
    def test_poisoning_breaks_protocol(self):
        """One noise agent in the witness state flips the verdict — the
        1-awareness fragility the paper's construction avoids."""
        k = 5
        pp = unary_threshold_protocol(k)
        poisoned = Multiset({1: 2, k: 1})  # 3 agents total, 3 < 5
        assert stabilisation_verdict(pp, poisoned) is True
