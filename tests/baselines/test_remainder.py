"""Tests for the remainder protocol (x = r mod m)."""

import pytest

from repro.baselines import remainder_protocol
from repro.core import Multiset, decide, stabilisation_verdict


class TestStructure:
    def test_state_count(self):
        pp = remainder_protocol(5)
        assert pp.state_count == 5 + 2  # actives mod 5 + two passives

    def test_rejects_bad_modulus(self):
        with pytest.raises(ValueError):
            remainder_protocol(0)

    def test_input_state(self):
        pp = remainder_protocol(4, 1)
        assert pp.input_states == frozenset({"a1"})

    def test_modulus_one_input_state(self):
        pp = remainder_protocol(1)
        assert pp.input_states == frozenset({"a0"})


class TestExact:
    @pytest.mark.parametrize("m,r", [(2, 0), (2, 1), (3, 0), (3, 2), (4, 1)])
    def test_boundary(self, m, r):
        pp = remainder_protocol(m, r)
        for x in range(1, 9):
            verdict = stabilisation_verdict(pp, Multiset({"a1": x}))
            assert verdict is (x % m == r), (m, r, x)

    def test_single_agent(self):
        pp = remainder_protocol(3, 1)
        assert stabilisation_verdict(pp, Multiset({"a1": 1})) is True

    def test_modulus_one_always_true(self):
        pp = remainder_protocol(1, 0)
        for x in (1, 2, 5):
            assert stabilisation_verdict(pp, Multiset({"a0": x})) is True


class TestSampled:
    def test_even_population(self):
        pp = remainder_protocol(2, 0)
        assert decide(pp, Multiset({"a1": 30}), seed=2) is True

    def test_odd_population(self):
        pp = remainder_protocol(2, 0)
        assert decide(pp, Multiset({"a1": 31}), seed=2) is False

    def test_mod_five(self):
        pp = remainder_protocol(5, 3)
        assert decide(pp, Multiset({"a1": 23}), seed=2) is True
        assert decide(pp, Multiset({"a1": 24}), seed=2) is False


class TestConservation:
    def test_active_value_sums_mod_m(self):
        """Active-active interactions conserve the value sum mod m."""
        m = 4
        pp = remainder_protocol(m)
        for t in pp.transitions:
            if t.q.startswith("a") and t.r.startswith("a"):
                pre = int(t.q[1:]) + int(t.r[1:])
                post = int(t.q2[1:])  # survivor carries the sum
                assert post == pre % m
