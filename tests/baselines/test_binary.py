"""Tests for the succinct binary threshold protocol (Theta(log k) states)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    binary_state_count,
    binary_threshold_protocol,
    set_bits_descending,
)
from repro.core import Multiset, decide, stabilisation_verdict


class TestBits:
    def test_set_bits(self):
        assert set_bits_descending(13) == [3, 2, 0]  # 1101
        assert set_bits_descending(8) == [3]
        assert set_bits_descending(1) == [0]


class TestStructure:
    @pytest.mark.parametrize("k", [2, 3, 6, 13, 100])
    def test_state_count_formula(self, k):
        pp = binary_threshold_protocol(k)
        assert pp.state_count == binary_state_count(k)

    def test_logarithmic_growth(self):
        """Doubling k adds O(1) states."""
        counts = [binary_state_count(2**i) for i in range(1, 12)]
        diffs = [b - a for a, b in zip(counts, counts[1:])]
        assert max(diffs) <= 2

    def test_k1_trivial(self):
        pp = binary_threshold_protocol(1)
        assert pp.state_count == 1
        assert stabilisation_verdict(pp, Multiset({"p0": 1})) is True

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            binary_threshold_protocol(0)

    def test_reversible_pairs_present(self):
        """Every combine has its split and every collect its disassembly
        (the paper's-style reversibility that prevents deadlocks)."""
        pp = binary_threshold_protocol(13)
        tset = {(t.q, t.r, t.q2, t.r2) for t in pp.transitions}
        for (q, r, q2, r2) in list(tset):
            if q.startswith("p") and q == r and r2 == "z":  # combine
                assert (q2, "z", q, r) in tset  # split exists


class TestExact:
    @pytest.mark.parametrize("k", [2, 3, 4, 5, 6, 7])
    def test_boundary(self, k):
        pp = binary_threshold_protocol(k)
        for x in range(1, k + 3):
            verdict = stabilisation_verdict(
                pp, Multiset({"p0": x}), max_configurations=500_000
            )
            assert verdict is (x >= k), (k, x, verdict)

    def test_k8_spot_checks(self):
        pp = binary_threshold_protocol(8)
        assert stabilisation_verdict(pp, Multiset({"p0": 7}), 500_000) is False
        assert stabilisation_verdict(pp, Multiset({"p0": 8}), 500_000) is True


class TestSampled:
    # Note: sampled accepting cases need slack above k — with x close to k
    # the (reversible) churn makes the exact-assembly hitting time blow up.
    # Tight boundaries are covered exactly in TestExact instead.
    @pytest.mark.parametrize("k,x", [(13, 20), (8, 24), (13, 26)])
    def test_accepting(self, k, x):
        pp = binary_threshold_protocol(k)
        assert (
            decide(pp, Multiset({"p0": x}), seed=1, convergence_window=50_000,
                   max_interactions=2_000_000)
            is True
        )

    @pytest.mark.parametrize("k,x", [(13, 12), (21, 5)])
    def test_rejecting(self, k, x):
        pp = binary_threshold_protocol(k)
        assert (
            decide(pp, Multiset({"p0": x}), seed=1, convergence_window=50_000,
                   max_interactions=2_000_000)
            is False
        )


class TestSoundness:
    def test_collector_value_conservation(self):
        """No transition creates value out of thin air before acceptance:
        sum of represented values is invariant among pre-acceptance states."""
        k = 13
        pp = binary_threshold_protocol(k)
        bits = set_bits_descending(k)

        def value(state):
            if state == "z":
                return 0
            if state.startswith("p"):
                return 2 ** int(state[1:])
            if state.startswith("c"):
                j = int(state[1:])
                return sum(2**b for b in bits[:j])
            return None  # TOP: value destroyed, after acceptance only

        for t in pp.transitions:
            values = [value(s) for s in (t.q, t.r, t.q2, t.r2)]
            if None in values:
                continue
            assert values[0] + values[1] == values[2] + values[3], t


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 6), st.integers(1, 8))
def test_exact_matches_threshold(k, x):
    pp = binary_threshold_protocol(k)
    verdict = stabilisation_verdict(pp, Multiset({"p0": x}), 500_000)
    assert verdict is (x >= k)
