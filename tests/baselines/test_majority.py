"""Exact and sampled tests for the majority protocol (x >= y)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import majority_protocol
from repro.core import Multiset, decide, stabilisation_verdict, verify_decides


@pytest.fixture(scope="module")
def pp():
    return majority_protocol()


class TestStructure:
    def test_four_states(self, pp):
        assert pp.state_count == 4

    def test_inputs(self, pp):
        assert pp.input_states == frozenset({"X", "Y"})

    def test_accepting_states_are_x_opinions(self, pp):
        assert pp.accepting_states == frozenset({"X", "x"})


class TestExact:
    @pytest.mark.parametrize(
        "x,y",
        [(1, 0), (0, 1), (1, 1), (2, 1), (1, 2), (3, 3), (4, 2), (2, 4), (5, 1)],
    )
    def test_exact_verdict(self, pp, x, y):
        verdict = stabilisation_verdict(pp, Multiset({"X": x, "Y": y}))
        assert verdict is (x >= y)

    def test_exhaustive_up_to_seven(self, pp):
        verify_decides(pp, lambda c: c["X"] >= c["Y"], populations=range(1, 8))


class TestSampled:
    def test_large_majority(self, pp):
        assert decide(pp, Multiset({"X": 40, "Y": 20}), seed=0) is True

    def test_large_minority(self, pp):
        assert decide(pp, Multiset({"Y": 40, "X": 20}), seed=0) is False

    def test_large_tie_accepts(self, pp):
        assert decide(pp, Multiset({"X": 25, "Y": 25}), seed=0) is True


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 4), st.integers(0, 4))
def test_exact_matches_predicate(x, y):
    if x + y == 0:
        return
    pp = majority_protocol()
    assert stabilisation_verdict(pp, Multiset({"X": x, "Y": y})) is (x >= y)
