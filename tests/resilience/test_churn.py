"""Dynamic populations under churn: plan semantics, golden replay per
engine family, the empty-plan identity, EnabledIndex resize invariants,
adversarial windows, and the batched engine's native barrier path."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import binary_threshold_protocol, majority_protocol
from repro.core import Multiset, simulate
from repro.core.batched import BatchedScheduler, _PureSampler
from repro.core.errors import NonConvergenceError
from repro.core.fastpath import (
    EnabledIndex,
    FastEnabledScheduler,
    FastUniformScheduler,
)
from repro.core.scheduler import EnabledTransitionScheduler, UniformPairScheduler
from repro.observability.trace import TraceRecorder
from repro.resilience import (
    AdversarialScheduler,
    ChurnProcess,
    FaultPlan,
    IndexView,
    JoinAgents,
    LeaveAgents,
    expand_churn,
)
from repro.runtime.pool import parallel_map

FAMILIES = [
    ("fast_enabled", FastEnabledScheduler),
    ("fast_uniform", FastUniformScheduler),
    ("legacy_enabled", EnabledTransitionScheduler),
    ("legacy_uniform", UniformPairScheduler),
]

#: Population-only churn (runs natively on every engine incl. batched).
CHURN_PLAN = FaultPlan(
    [
        JoinAgents(at=40, agents=3, state="p0"),
        LeaveAgents(at=120, agents=2),
        ChurnProcess(at=200, length=2_000, join_rate=2e-3, leave_rate=2e-3, state="p0"),
    ]
)

#: Adds a per-interaction kind (adversarial window) on top.
ADVERSARIAL_PLAN = FaultPlan(
    [*CHURN_PLAN, AdversarialScheduler(at=2_500, length=60, fairness=4)]
)


def _run(scheduler_cls, *, seed=11, faults=None, population=24, k=5):
    return simulate(
        binary_threshold_protocol(k),
        Multiset({"p0": population}),
        seed=seed,
        scheduler=scheduler_cls(),
        faults=faults,
        max_interactions=300_000,
    )


def _fingerprint(result):
    return (
        dict(result.final.items()),
        result.verdict,
        result.silent,
        result.interactions,
        result.productive,
        result.output_trace,
    )


def _churned_fingerprint(seed):
    """Module-level so :func:`parallel_map` can ship it to pool workers."""
    return _fingerprint(_run(FastEnabledScheduler, seed=seed, faults=CHURN_PLAN))


class TestChurnPlanSemantics:
    def test_churn_process_validates(self):
        with pytest.raises(ValueError):
            ChurnProcess(at=0, length=0)
        with pytest.raises(ValueError):
            ChurnProcess(at=0, join_rate=-0.1)
        with pytest.raises(ValueError):
            ChurnProcess(at=0, leave_rate=-0.1)
        with pytest.raises(ValueError):
            AdversarialScheduler(at=0, fairness=-1)

    def test_expand_churn_is_deterministic(self):
        proc = ChurnProcess(at=100, length=5_000, join_rate=1e-2, leave_rate=1e-2)
        first = expand_churn(proc, random.Random(42))
        second = expand_churn(proc, random.Random(42))
        assert first == second
        assert all(100 <= f.at < 5_100 for f in first)

    def test_zero_rates_expand_to_nothing(self):
        proc = ChurnProcess(at=100, length=5_000)
        assert expand_churn(proc, random.Random(42)) == []

    def test_bound_plan_tracks_population_only(self):
        assert CHURN_PLAN.bind(3).population_only()
        assert not ADVERSARIAL_PLAN.bind(3).population_only()

    def test_inert_distinguishes_empty_from_pending(self):
        assert FaultPlan().bind(0).inert()
        assert FaultPlan([ChurnProcess(at=10, length=100)]).bind(0).inert()
        assert not CHURN_PLAN.bind(0).inert()


class TestDeterminism:
    @pytest.mark.parametrize("name,scheduler_cls", FAMILIES)
    def test_golden_replay_per_family(self, name, scheduler_cls):
        first = _run(scheduler_cls, faults=ADVERSARIAL_PLAN)
        second = _run(scheduler_cls, faults=ADVERSARIAL_PLAN)
        assert _fingerprint(first) == _fingerprint(second)

    def test_golden_replay_batched(self):
        first = _run(BatchedScheduler, faults=CHURN_PLAN, population=64)
        second = _run(BatchedScheduler, faults=CHURN_PLAN, population=64)
        assert _fingerprint(first) == _fingerprint(second)

    @pytest.mark.parametrize(
        "name,scheduler_cls", FAMILIES + [("batched", BatchedScheduler)]
    )
    def test_empty_churn_plan_is_bit_identical_to_no_plan(
        self, name, scheduler_cls
    ):
        # A zero-rate churn window expands to no events, so the injector
        # must null itself out and leave the uninjected hot path intact.
        plain = _run(scheduler_cls, faults=None)
        zero_rate = _run(
            scheduler_cls,
            faults=FaultPlan([ChurnProcess(at=10, length=1_000)]),
        )
        assert _fingerprint(plain) == _fingerprint(zero_rate)

    def test_churn_actually_perturbs_the_run(self):
        plain = _run(FastEnabledScheduler, faults=None)
        churned = _run(FastEnabledScheduler, faults=CHURN_PLAN)
        assert _fingerprint(plain) != _fingerprint(churned)

    def test_jobs_two_matches_jobs_one_under_churn(self):
        tasks = [(seed,) for seed in (1, 2, 3, 4)]
        sequential = parallel_map(_churned_fingerprint, tasks, jobs=1)
        fanned = parallel_map(_churned_fingerprint, tasks, jobs=2)
        assert sequential == fanned

    @pytest.mark.parametrize(
        "name,scheduler_cls", FAMILIES + [("batched", BatchedScheduler)]
    )
    def test_population_accounting(self, name, scheduler_cls):
        result = _run(scheduler_cls, faults=CHURN_PLAN, population=24)
        assert result.population == result.final.size
        assert result.population == 24 + result.joined - result.departed
        # The discrete part of the plan fires unconditionally.
        assert result.joined >= 3
        assert result.departed >= 2


class TestEnabledIndexResize:
    def _materialised(self, index):
        return Multiset(
            {
                state: index.cnt[index.table.sid[state]]
                for state in index.table.states
                if index.cnt[index.table.sid[state]]
            }
        )

    @pytest.mark.parametrize("mode", ["enabled", "uniform"])
    def test_grow_and_shrink_keep_invariants(self, mode):
        pp = majority_protocol()
        index = EnabledIndex(pp, Multiset({"X": 9, "Y": 4}), mode=mode)
        index.grow(index.table.sid["X"], 3)
        index.validate(self._materialised(index))
        index.shrink(index.table.sid["Y"], 4)
        index.validate(self._materialised(index))
        assert index.population == 12

    def test_shrink_below_zero_rejected(self):
        pp = majority_protocol()
        index = EnabledIndex(pp, Multiset({"X": 2, "Y": 1}))
        with pytest.raises(ValueError):
            index.shrink(index.table.sid["X"], 3)

    def test_view_resize_tracks_accepting_and_size(self):
        pp = binary_threshold_protocol(5)
        index = EnabledIndex(pp, Multiset({"p0": 10}))
        view = IndexView(index)
        injector = FaultPlan(
            [JoinAgents(at=0, agents=4, state="p0"), LeaveAgents(at=0, agents=1)]
        ).bind(7)
        injector.fire(0, view)
        assert view.size_delta == 3
        assert injector.joined == 4 and injector.departed == 1
        index.validate(self._materialised(index))

    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["X", "Y", "x", "y"]), st.integers(-3, 3)
            ),
            max_size=20,
        )
    )
    def test_resize_invariants_hold_under_any_op_sequence(self, ops):
        pp = majority_protocol()
        index = EnabledIndex(pp, Multiset({"X": 5, "Y": 5}), mode="uniform")
        for state, delta in ops:
            sid = index.table.sid[state]
            if delta >= 0:
                index.grow(sid, delta)
            elif index.cnt[sid] >= -delta:
                index.shrink(sid, -delta)
        index.validate(self._materialised(index))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 2**16), rate=st.floats(1e-4, 5e-3))
    def test_churned_fast_run_replays(self, seed, rate):
        plan = FaultPlan(
            [ChurnProcess(at=30, length=1_000, join_rate=rate, leave_rate=rate, state="p0")]
        )
        first = simulate(
            binary_threshold_protocol(5),
            Multiset({"p0": 16}),
            seed=seed,
            scheduler=FastEnabledScheduler(),
            faults=plan,
            max_interactions=30_000,
        )
        second = simulate(
            binary_threshold_protocol(5),
            Multiset({"p0": 16}),
            seed=seed,
            scheduler=FastEnabledScheduler(),
            faults=plan,
            max_interactions=30_000,
        )
        assert _fingerprint(first) == _fingerprint(second)
        assert first.population == first.final.size


class TestAdversarialWindow:
    def test_take_adversarial_respects_fairness_budget(self):
        injector = FaultPlan(
            [AdversarialScheduler(at=5, length=100, fairness=2)]
        ).bind(0)
        pp = majority_protocol()
        view = IndexView(EnabledIndex(pp, Multiset({"X": 3, "Y": 2})))
        injector.fire(5, view)
        assert injector.adversarial_active(6)
        assert injector.adversarial_active(105)
        assert not injector.adversarial_active(106)
        # fairness=2: every second pick inside the window is fair-sampled.
        picks = [injector.take_adversarial() for _ in range(4)]
        assert picks == [True, False, True, False]

    def test_fairness_zero_is_pure_adversary(self):
        injector = FaultPlan(
            [AdversarialScheduler(at=5, length=100, fairness=0)]
        ).bind(0)
        pp = majority_protocol()
        view = IndexView(EnabledIndex(pp, Multiset({"X": 3, "Y": 2})))
        injector.fire(5, view)
        assert all(injector.take_adversarial() for _ in range(8))

    @pytest.mark.parametrize("name,scheduler_cls", FAMILIES)
    def test_window_perturbs_but_run_recovers(self, name, scheduler_cls):
        # A bounded adversarial window must not wedge the run: once it
        # closes, fair sampling resumes and the verdict is right (24 >= 5
        # and joins/leaves here are balanced enough to stay above k).
        plan = FaultPlan([AdversarialScheduler(at=10, length=150, fairness=3)])
        result = _run(scheduler_cls, faults=plan)
        assert result.verdict is True
        assert _fingerprint(result) != _fingerprint(_run(scheduler_cls))


class TestBatchedChurn:
    def test_small_population_sampler_rejected_cleanly(self):
        for m in (0, 1):
            with pytest.raises(NonConvergenceError):
                _PureSampler(random.Random(0), 3, m)

    def test_set_population_rejects_small_m(self):
        sampler = _PureSampler(random.Random(0), 3, 8)
        with pytest.raises(NonConvergenceError):
            sampler.set_population(1)

    def test_batch_length_guard(self):
        sampler = _PureSampler(random.Random(0), 3, 8)
        sampler.m = 1  # simulate an unguarded mid-run shrink
        with pytest.raises(NonConvergenceError):
            sampler.batch_length()

    def test_batched_scheduler_single_agent_is_noop(self):
        # n = 1 never reaches the batch law: simulate falls back to the
        # per-step path and the lone agent's output is the verdict.
        result = simulate(
            binary_threshold_protocol(5),
            Multiset({"p0": 1}),
            seed=0,
            scheduler=BatchedScheduler(),
            max_interactions=1_000,
        )
        assert result.population == 1
        assert result.verdict is False  # 1 < 5

    def test_drain_to_zero_mid_run_finishes_cleanly(self):
        plan = FaultPlan([LeaveAgents(at=50, agents=100)])
        result = _run(BatchedScheduler, faults=plan, population=32)
        assert result.population == 0
        assert result.verdict is None
        assert result.departed == 32

    def test_drain_to_one_then_join_revives(self):
        plan = FaultPlan(
            [
                LeaveAgents(at=50, agents=31),
                JoinAgents(at=400, agents=15, state="p0"),
            ]
        )
        result = _run(BatchedScheduler, faults=plan, population=32)
        assert result.population == 16
        assert result.verdict is True  # populations rejoined above k

    def test_batched_matches_population_arithmetic(self):
        result = _run(BatchedScheduler, faults=CHURN_PLAN, population=64)
        assert result.population == 64 + result.joined - result.departed


class TestFastpathDrain:
    @pytest.mark.parametrize("name,scheduler_cls", FAMILIES)
    def test_drain_to_zero_yields_none_verdict(self, name, scheduler_cls):
        plan = FaultPlan([LeaveAgents(at=20, agents=100)])
        result = _run(scheduler_cls, faults=plan, population=12)
        assert result.population == 0
        assert result.verdict is None


class TestChurnEvents:
    def test_observer_sees_join_leave_and_adversarial_events(self):
        recorder = TraceRecorder()
        result = simulate(
            binary_threshold_protocol(5),
            Multiset({"p0": 24}),
            seed=11,
            scheduler=FastEnabledScheduler(),
            faults=ADVERSARIAL_PLAN,
            max_interactions=300_000,
            observer=recorder,
        )
        kinds = {
            e.data["fault"] for e in recorder.events if e.kind == "fault"
        }
        assert {"join", "leave", "adversarial"} <= kinds
        assert result.joined > 0 and result.departed > 0

    def test_profiler_aggregates_churn_metrics(self):
        from repro.observability.profile import ProfilingObserver

        profiler = ProfilingObserver()
        result = simulate(
            binary_threshold_protocol(5),
            Multiset({"p0": 24}),
            seed=11,
            scheduler=FastEnabledScheduler(),
            faults=CHURN_PLAN,
            max_interactions=300_000,
            observer=profiler,
        )
        summary = profiler.summary()
        assert summary["churn.joined"] == result.joined
        assert summary["churn.departed"] == result.departed
        assert summary["churn.agents_joined"] == result.joined
        assert summary["churn.agents_departed"] == result.departed
        assert summary["churn.joins"] >= 1 and summary["churn.leaves"] >= 1
