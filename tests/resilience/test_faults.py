"""Deterministic fault injection: plan semantics, per-layer views,
golden replay across every scheduler family, and invariant preservation."""

import random

import pytest

from repro.baselines import binary_threshold_protocol, majority_protocol
from repro.core import Multiset, simulate
from repro.core.fastpath import (
    EnabledIndex,
    FastEnabledScheduler,
    FastUniformScheduler,
)
from repro.core.scheduler import EnabledTransitionScheduler, UniformPairScheduler
from repro.observability.trace import TraceRecorder
from repro.resilience import (
    CorruptAgents,
    DropInteractions,
    DuplicateInteractions,
    FaultInjector,
    FaultPlan,
    IndexView,
    RegisterView,
    ResetAgents,
    UnfairWindow,
    resolve_injector,
)

FAMILIES = [
    ("fast_enabled", FastEnabledScheduler),
    ("fast_uniform", FastUniformScheduler),
    ("legacy_enabled", EnabledTransitionScheduler),
    ("legacy_uniform", UniformPairScheduler),
]

MIXED_PLAN = FaultPlan(
    [
        CorruptAgents(at=30, agents=2),
        ResetAgents(at=80, agents=1),
        DropInteractions(at=140, count=2),
        DuplicateInteractions(at=200, count=2),
        UnfairWindow(at=260, length=40),
    ]
)


def _run(scheduler_cls, *, seed=11, faults=None, population=24, k=5):
    return simulate(
        binary_threshold_protocol(k),
        Multiset({"p0": population}),
        seed=seed,
        scheduler=scheduler_cls(),
        faults=faults,
        max_interactions=300_000,
    )


def _fingerprint(result):
    return (
        dict(result.final.items()),
        result.verdict,
        result.silent,
        result.interactions,
        result.productive,
        result.output_trace,
    )


class TestFaultPlan:
    def test_rejects_non_fault_records(self):
        with pytest.raises(TypeError):
            FaultPlan(["corrupt"])

    def test_rejects_negative_trigger(self):
        with pytest.raises(ValueError):
            FaultPlan([CorruptAgents(at=-1)])

    def test_sorted_by_trigger_step(self):
        plan = FaultPlan([ResetAgents(at=50), CorruptAgents(at=10)])
        assert [f.at for f in plan] == [10, 50]

    def test_periodic_corruption_schedule(self):
        plan = FaultPlan.periodic_corruption(start=10, period=5, count=3, agents=2)
        assert [f.at for f in plan] == [10, 15, 20]
        assert all(isinstance(f, CorruptAgents) and f.agents == 2 for f in plan)

    def test_periodic_corruption_rejects_bad_period(self):
        with pytest.raises(ValueError):
            FaultPlan.periodic_corruption(start=0, period=0, count=2)

    def test_resolve_injector_accepts_plan_injector_none(self):
        assert resolve_injector(None, 0) is None
        injector = resolve_injector(MIXED_PLAN, 3)
        assert isinstance(injector, FaultInjector)
        assert resolve_injector(injector, 99) is injector
        with pytest.raises(TypeError):
            resolve_injector("chaos", 0)


class TestDeterminism:
    @pytest.mark.parametrize("name,scheduler_cls", FAMILIES)
    def test_golden_replay_per_family(self, name, scheduler_cls):
        # Same (seed, plan) twice: the faulted run must be bit-identical.
        first = _run(scheduler_cls, faults=MIXED_PLAN)
        second = _run(scheduler_cls, faults=MIXED_PLAN)
        assert _fingerprint(first) == _fingerprint(second)

    @pytest.mark.parametrize("name,scheduler_cls", FAMILIES)
    def test_empty_plan_is_bit_identical_to_no_plan(self, name, scheduler_cls):
        # The fault stream is independent of the simulation stream, so an
        # empty plan must not perturb a seeded run at all.
        plain = _run(scheduler_cls, faults=None)
        empty = _run(scheduler_cls, faults=FaultPlan())
        assert _fingerprint(plain) == _fingerprint(empty)

    def test_faults_actually_perturb_the_run(self):
        plain = _run(FastEnabledScheduler, faults=None)
        faulted = _run(FastEnabledScheduler, faults=MIXED_PLAN)
        assert _fingerprint(plain) != _fingerprint(faulted)

    @pytest.mark.parametrize("name,scheduler_cls", FAMILIES)
    def test_population_preserved_under_faults(self, name, scheduler_cls):
        # Every fault kind is population-preserving: the model has no churn.
        result = _run(scheduler_cls, faults=MIXED_PLAN, population=24)
        assert result.final.size == 24
        assert all(count >= 0 for _, count in result.final.items())


class TestIndexViewInvariants:
    def test_corruption_keeps_enabled_index_exact(self):
        # Fire heavy corruption straight into a live EnabledIndex and
        # brute-force check the weight/active/total invariant afterwards.
        pp = majority_protocol()
        config = Multiset({"X": 9, "Y": 4})
        for mode in ("enabled", "uniform"):
            index = EnabledIndex(pp, config.copy(), mode=mode)
            view = IndexView(index)
            injector = FaultPlan(
                [CorruptAgents(at=0, agents=6), ResetAgents(at=0, agents=3)]
            ).bind(7)
            injector.fire(0, view)
            materialised = Multiset(
                {
                    state: index.cnt[index.table.sid[state]]
                    for state in index.table.states
                    if index.cnt[index.table.sid[state]]
                }
            )
            index.validate(materialised)
            assert materialised.size == 13

    def test_accept_delta_tracks_accepting_count(self):
        pp = binary_threshold_protocol(5)
        config = Multiset({"p0": 10})
        index = EnabledIndex(pp, config.copy(), mode="enabled")
        view = IndexView(index)
        accepting = pp.accepting_states
        before = sum(
            index.cnt[index.table.sid[s]]
            for s in index.table.states
            if s in accepting
        )
        FaultPlan([CorruptAgents(at=0, agents=5)]).bind(3).fire(0, view)
        after = sum(
            index.cnt[index.table.sid[s]]
            for s in index.table.states
            if s in accepting
        )
        assert view.accept_delta == after - before

    @pytest.mark.parametrize(
        "scheduler_cls", [FastEnabledScheduler, FastUniformScheduler]
    )
    def test_faulted_fastpath_final_config_is_consistent(self, scheduler_cls):
        # End-to-end: after a faulted fast run, rebuilding the index from
        # the final configuration must satisfy the invariant (the returned
        # configuration is internally consistent and non-negative).
        result = _run(scheduler_cls, faults=MIXED_PLAN)
        pp = binary_threshold_protocol(5)
        rebuilt = EnabledIndex(pp, result.final.copy(), mode="enabled")
        rebuilt.validate(result.final)


class TestFaultBehaviours:
    def test_dropped_interactions_change_nothing(self):
        # Every step of the run is a drop: the scheduler advances, the
        # configuration does not move.
        config = Multiset({"p0": 8})
        plan = FaultPlan([DropInteractions(at=0, count=10)])
        result = simulate(
            binary_threshold_protocol(5),
            config,
            seed=0,
            scheduler=EnabledTransitionScheduler(),
            faults=plan,
            max_interactions=10,
        )
        assert result.interactions == 10
        assert result.productive == 0
        assert dict(result.final.items()) == {"p0": 8}

    def test_duplicates_count_as_productive_work(self):
        plain = _run(FastEnabledScheduler, seed=5, faults=None)
        doubled = _run(
            FastEnabledScheduler,
            seed=5,
            faults=FaultPlan([DuplicateInteractions(at=0, count=40)]),
        )
        # Re-applied interactions do productive work without consuming
        # scheduler steps, so the productive/interaction ratio goes up.
        assert doubled.productive * plain.interactions > (
            plain.productive * doubled.interactions
        ) or doubled.productive >= plain.productive

    def test_unfair_window_still_recovers(self):
        # A bounded fairness violation must not wedge the run: once the
        # window closes, fair sampling resumes and the verdict is right.
        result = _run(
            FastEnabledScheduler,
            faults=FaultPlan([UnfairWindow(at=10, length=200)]),
            population=24,
        )
        assert result.verdict is True  # 24 >= 5

    def test_reset_to_unknown_state_rejected(self):
        plan = FaultPlan([ResetAgents(at=0, agents=1, state="nope")])
        with pytest.raises(ValueError):
            _run(FastEnabledScheduler, faults=plan)

    def test_injector_exhaustion(self):
        injector = FaultPlan([CorruptAgents(at=5)]).bind(0)
        assert not injector.exhausted()
        assert injector.next_at == 5
        pp = majority_protocol()
        view = IndexView(EnabledIndex(pp, Multiset({"X": 3, "Y": 2})))
        injector.fire(5, view)
        assert injector.exhausted()
        assert injector.next_at == float("inf")


class TestRegisterView:
    def test_moves_preserve_total(self):
        registers = {"a": 5, "b": 0, "c": 2}
        view = RegisterView(registers)
        FaultPlan([CorruptAgents(at=0, agents=4)]).bind(1).fire(0, view)
        assert sum(registers.values()) == 7
        assert all(v >= 0 for v in registers.values())

    def test_program_faults_replay_deterministically(self):
        from repro.programs import Move, procedure, program, run_program, while_true

        prog = program(
            ["x", "y"], [procedure("Main", Move("x", "y"), while_true())]
        )
        plan = FaultPlan([CorruptAgents(at=20, agents=2)])
        runs = [
            run_program(prog, {"x": 6}, seed=3, faults=plan, max_steps=400)
            for _ in range(2)
        ]
        assert runs[0].registers == runs[1].registers
        assert runs[0].steps == runs[1].steps
        assert sum(runs[0].registers.values()) == 6


class TestFaultEvents:
    def test_observer_sees_one_event_per_fired_fault(self):
        recorder = TraceRecorder()
        _ = simulate(
            binary_threshold_protocol(5),
            Multiset({"p0": 24}),
            seed=11,
            scheduler=FastEnabledScheduler(),
            faults=MIXED_PLAN,
            max_interactions=300_000,
            observer=recorder,
        )
        faults = [e for e in recorder.events if e.kind == "fault"]
        assert len(faults) == len(MIXED_PLAN)
        kinds = {e.data["fault"] for e in faults}
        assert kinds == {
            "corrupt",
            "reset",
            "drop_scheduled",
            "duplicate_scheduled",
            "unfair",
        }
