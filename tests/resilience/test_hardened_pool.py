"""Hardened runtime: worker crashes, hangs, wall-clock deadlines, and
graceful degradation all end in the same verdict the sequential path gives."""

import os
import signal
import time

import pytest

from repro.baselines import binary_threshold_protocol
from repro.core import Multiset, NonConvergenceError, decide, simulate
from repro.core.scheduler import UniformPairScheduler
import repro.runtime.pool as pool
from repro.runtime.pool import decide_parallel, parallel_map

#: Recorded at import: under the default ``fork`` start method workers
#: inherit this value, so ``os.getpid() != PARENT_PID`` identifies "I am
#: a pool worker" inside functions that must misbehave only in workers.
PARENT_PID = os.getpid()


def _suicidal_worker(protocol, config, seed, sim_kwargs, attempt=0):
    """Every pool attempt dies instantly: the BrokenProcessPool path."""
    os.kill(os.getpid(), signal.SIGKILL)


def _sleeping_worker(protocol, config, seed, sim_kwargs, attempt=0):
    """Every pool attempt hangs: the per-attempt timeout path."""
    time.sleep(120)


def _square_unless_worker(x):
    if os.getpid() != PARENT_PID:
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


@pytest.fixture
def protocol_and_config():
    return binary_threshold_protocol(5), Multiset({"p0": 9})


@pytest.fixture
def sequential_verdict(protocol_and_config):
    pp, config = protocol_and_config
    return decide(pp, config, seed=7, attempts=4, jobs=1)


class TestBrokenPoolRecovery:
    def test_killed_workers_retry_then_degrade_to_sequential(
        self, monkeypatch, protocol_and_config, sequential_verdict
    ):
        pp, config = protocol_and_config
        monkeypatch.setattr(pool, "_decide_attempt_worker", _suicidal_worker)
        stats = {}
        start = time.monotonic()
        verdict = decide_parallel(
            pp,
            config,
            base=7,
            attempts=4,
            jobs=2,
            stats=stats,
            max_retries=2,
            backoff_base=0.01,
        )
        elapsed = time.monotonic() - start
        assert verdict == sequential_verdict
        assert stats["retries"] == 2
        assert stats["degraded"] >= 1
        assert (
            stats["completed"] + stats["cancelled"] + stats["failed"]
            == stats["launched"]
        )
        assert elapsed < 60  # bounded: no unbounded retry storm

    def test_worker_failures_counted_in_metrics(
        self, monkeypatch, protocol_and_config
    ):
        from repro.observability.metrics import MetricsObserver

        pp, config = protocol_and_config
        monkeypatch.setattr(pool, "_decide_attempt_worker", _suicidal_worker)
        observer = MetricsObserver()
        decide_parallel(
            pp,
            config,
            base=7,
            attempts=3,
            jobs=2,
            observer=observer,
            max_retries=1,
            backoff_base=0.01,
        )
        counters = observer.metrics.to_dict()["counters"]
        assert counters.get("pool.worker_failures", 0) >= 1
        assert counters.get("pool.degraded", 0) >= 1


class TestHungWorkers:
    def test_hung_workers_hit_timeout_and_degrade(
        self, monkeypatch, protocol_and_config, sequential_verdict
    ):
        pp, config = protocol_and_config
        monkeypatch.setattr(pool, "_decide_attempt_worker", _sleeping_worker)
        stats = {}
        start = time.monotonic()
        verdict = decide_parallel(
            pp, config, base=7, attempts=3, jobs=2, stats=stats, timeout=1.0
        )
        elapsed = time.monotonic() - start
        assert verdict == sequential_verdict
        assert stats["degraded"] >= 1
        assert (
            stats["completed"] + stats["cancelled"] + stats["failed"]
            == stats["launched"]
        )
        # One timeout window plus teardown and the sequential replay —
        # nowhere near the worker's 120s sleep.
        assert elapsed < 30


class TestParallelMapDegradation:
    def test_broken_pool_falls_back_to_sequential_results(self):
        tasks = [(i,) for i in range(6)]
        assert parallel_map(_square_unless_worker, tasks, jobs=3) == [
            i * i for i in range(6)
        ]


class TestDeadlines:
    def _big_slow_run(self, **kwargs):
        # The legacy uniform scheduler on a large population grinds slowly
        # enough that a millisecond-scale deadline always fires first.
        return simulate(
            binary_threshold_protocol(5),
            Multiset({"p0": 5_000}),
            seed=0,
            scheduler=UniformPairScheduler(),
            max_interactions=500_000_000,
            convergence_window=400_000_000,
            **kwargs,
        )

    def test_simulate_deadline_exceeded(self):
        result = self._big_slow_run(deadline=0.05)
        assert result.deadline_exceeded
        assert result.verdict is None

    def test_simulate_env_deadline(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "0.05")
        result = self._big_slow_run()
        assert result.deadline_exceeded

    def test_explicit_deadline_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "0.001")
        result = simulate(
            binary_threshold_protocol(5),
            Multiset({"p0": 9}),
            seed=0,
            deadline=30.0,
        )
        assert not result.deadline_exceeded
        assert result.verdict is True

    def test_garbage_env_deadline_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "soon")
        result = simulate(
            binary_threshold_protocol(5), Multiset({"p0": 9}), seed=0
        )
        assert not result.deadline_exceeded

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError):
            simulate(
                binary_threshold_protocol(5),
                Multiset({"p0": 9}),
                seed=0,
                deadline=0.0,
            )

    def test_decide_deadline_raises_with_message(self):
        with pytest.raises(NonConvergenceError, match="deadline"):
            decide(
                binary_threshold_protocol(5),
                Multiset({"p0": 5_000}),
                seed=0,
                attempts=3,
                deadline=0.05,
                scheduler=UniformPairScheduler(),
                max_interactions=500_000_000,
                convergence_window=400_000_000,
            )

    def test_decide_parallel_deadline_raises(self, protocol_and_config):
        pp = binary_threshold_protocol(5)
        config = Multiset({"p0": 5_000})
        with pytest.raises(NonConvergenceError, match="deadline"):
            decide_parallel(
                pp,
                config,
                base=0,
                attempts=4,
                jobs=2,
                deadline=0.5,
                scheduler=UniformPairScheduler(),
                max_interactions=500_000_000,
                convergence_window=400_000_000,
            )

    def test_per_attempt_timeout_lets_later_attempts_win(self):
        # A tiny per-attempt budget times the slow attempts out, but the
        # overall call keeps going and reports how many timed out.
        with pytest.raises(NonConvergenceError, match="timed out"):
            decide(
                binary_threshold_protocol(5),
                Multiset({"p0": 5_000}),
                seed=0,
                attempts=2,
                timeout=0.05,
                scheduler=UniformPairScheduler(),
                max_interactions=500_000_000,
                convergence_window=400_000_000,
            )


class TestProgramDeadlines:
    def _flapping_program(self):
        # Main flips the output flag forever: never quiet, never hung.
        from repro.programs import SetOutput, procedure, program, while_true

        return program(
            ["x"],
            [procedure("Main", while_true(SetOutput(True), SetOutput(False)))],
        )

    def test_run_program_deadline(self):
        from repro.programs import run_program

        result = run_program(
            self._flapping_program(), {"x": 3}, seed=0,
            max_steps=10**12, deadline=0.05,
        )
        assert result.deadline_exceeded

    def test_decide_program_strict_deadline_message(self):
        from repro.programs import decide_program

        with pytest.raises(NonConvergenceError, match="deadline exceeded"):
            decide_program(
                self._flapping_program(), {"x": 3}, seed=0,
                max_steps=10**12, deadline=0.05,
            )
