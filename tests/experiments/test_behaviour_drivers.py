"""Fast-configuration tests for the behavioural experiment drivers."""

from repro.experiments import (
    run_figure1,
    run_program_selfstab,
    run_theorem3_decisions,
)


class TestFigure1Driver:
    def test_all_correct(self):
        report = run_figure1(seed=1)
        assert report.correct == len(report.trials) == 14
        assert "4 <= m < 7" in report.render()


class TestTheorem2Driver:
    def test_program_selfstab_n1(self):
        report = run_program_selfstab(1, trials_per_total=2, seed=5)
        assert report.correct == report.total
        assert "stabilised to" in report.render()


class TestTheorem3Driver:
    def test_decisions_n1(self):
        trials = run_theorem3_decisions(1, seed=0)
        assert all(t.correct for t in trials)
        # Boundary coverage: both rejecting and accepting totals appear.
        assert any(t.expected for t in trials)
        assert any(not t.expected for t in trials)

    def test_custom_totals(self):
        trials = run_theorem3_decisions(1, totals=[1, 4], seed=1)
        assert [t.total for t in trials] == [1, 4]
        assert [t.got for t in trials] == [False, True]
