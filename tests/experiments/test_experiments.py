"""Tests for the experiment drivers (light configurations of each)."""

import pytest

from repro.experiments import (
    analyse,
    conversion_rows,
    figure2_configurations,
    figure3_machine,
    figure4_machine,
    figure5_machine,
    figure6_machine,
    figure7_machine,
    render_conversion,
    render_table,
    run_figure2,
    run_figure4,
    run_figures_lowering,
    run_lemma15,
    run_table1,
    run_theorem1_sizes,
    run_theorem3_sizes,
)


class TestReportRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [(1, 22), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_bool_and_float_formatting(self):
        text = render_table(["v"], [(True,), (False,), (1.234,)])
        assert "yes" in text and "no" in text and "1.23" in text

    def test_huge_ints_scientific(self):
        text = render_table(["v"], [(10**20,)])
        assert "e+" in text

    def test_none_renders_dash(self):
        assert "-" in render_table(["v"], [(None,)])


class TestTable1Driver:
    def test_report(self):
        report = run_table1(4)
        assert len(report.rows) == 4
        assert report.ordering_holds()
        rendered = report.render()
        assert "this paper" in rendered and "1412" in rendered


class TestTheoremSizeDrivers:
    def test_theorem1_sizes(self):
        report = run_theorem1_sizes(5)
        assert report.linear_states()
        assert report.double_exponential()
        assert "2^(2^(n-1))" in report.render()

    def test_theorem3_sizes(self):
        report = run_theorem3_sizes(6)
        assert report.linear_size()
        assert all(row.bound_met for row in report.rows)


class TestConversionDriver:
    def test_rows_and_bounds(self):
        rows = conversion_rows(
            builders=[
                ("thr2", lambda: __import__(
                    "repro.programs", fromlist=["simple_threshold_program"]
                ).simple_threshold_program(2)),
            ]
        )
        assert len(rows) == 1
        assert rows[0].bound_holds
        assert "P16 bound" in render_conversion(rows)


class TestFigure2Driver:
    def test_all_rows_match(self):
        report = run_figure2()
        assert report.all_match
        assert len(report.rows) == 5

    def test_too_small_level_rejected(self):
        with pytest.raises(ValueError):
            figure2_configurations(1)  # N_1 = 1 < 7

    def test_configurations_have_expected_keys(self):
        configs = figure2_configurations(3)
        assert set(configs) == {
            "i-proper",
            "weakly i-proper",
            "i-low",
            "i-high",
            "i-empty",
        }


class TestLoweringFigures:
    def test_all_four_figures_compile(self):
        facts = run_figures_lowering()
        assert [g.name for g in facts] == [
            "figure3",
            "figure5",
            "figure6",
            "figure7",
        ]

    def test_figure3_branch_and_swap_shape(self):
        g = analyse(figure3_machine())
        assert g.facts["branch_follows_every_detect"]
        assert g.register_map_assignments == 3
        assert g.detects == 1 and g.moves == 1

    def test_figure5_negated_condition(self):
        g = analyse(figure5_machine())
        assert g.detects == 1 and g.moves == 1
        assert g.facts["branch_follows_every_detect"]

    def test_figure6_procedure_protocol(self):
        g = analyse(figure6_machine())
        assert g.moves == 2
        assert g.return_pointer_indirect_jumps >= 1

    def test_figure7_restart_helper(self):
        g = analyse(figure7_machine())
        assert g.restart_entry is not None
        # 2 scramble loops per non-hub register (2 of them): 4 detects.
        assert g.detects == 4


class TestFigure4Driver:
    def test_machine_validates(self):
        machine = figure4_machine()
        assert machine.length == 5

    def test_all_facts_hold(self):
        report = run_figure4()
        assert all(report.facts.values()), report.facts

    def test_gadget_counts_nonzero(self):
        report = run_figure4()
        for index in (1, 2, 3, 4):
            assert report.per_instruction_counts[index] > 0


class TestLemma15Driver:
    def test_quick_recovery(self, thr2_pipeline):
        report = run_lemma15(
            pipeline=thr2_pipeline,
            noise_levels=[0, 4],
            trials_per_level=2,
            seed=1,
        )
        assert report.recovered == len(report.trials) == 4
        assert "recovered after" in report.render()
