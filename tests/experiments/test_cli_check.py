"""The exit-code contract of ``python -m repro check`` / ``repro lint``:
0 clean at the threshold, 1 findings at or above it, 2 usage errors.
"""

import json

import pytest

import repro.analysis.statics.targets as targets_mod
from repro.__main__ import main
from repro.core.diagnostics import Diagnostic


@pytest.fixture()
def fake_targets(monkeypatch):
    """A tiny registry so CLI tests never compile real pipelines."""

    def install(diagnostics):
        monkeypatch.setitem(
            targets_mod.TARGETS,
            "fake",
            ("a seeded fake target", lambda: list(diagnostics)),
        )

    return install


class TestCheckExitCodes:
    def test_clean_target_exits_zero(self, fake_targets, capsys):
        fake_targets([])
        assert main(("check", "fake")) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, fake_targets, capsys):
        fake_targets([Diagnostic("PROT001", "warning", "dead", target="t")])
        assert main(("check", "fake")) == 1
        assert "FINDINGS" in capsys.readouterr().out

    def test_fail_on_threshold_filters(self, fake_targets, capsys):
        fake_targets([Diagnostic("PROT002", "warning", "unreachable", target="t")])
        # The warning stays visible but does not fail at the error bar.
        assert main(("check", "fake", "--fail-on", "error")) == 0
        out = capsys.readouterr().out
        assert "PROT002" in out and "clean" in out
        assert main(("check", "fake", "--fail-on", "info")) == 1

    def test_unknown_target_exits_two(self):
        with pytest.raises(SystemExit) as excinfo:
            main(("check", "bogus-target"))
        assert excinfo.value.code == 2

    def test_list_exits_zero(self, capsys):
        assert main(("check", "--list")) == 0
        out = capsys.readouterr().out
        for name in ("examples", "baselines", "pipeline", "lipton", "all"):
            assert name in out

    def test_no_targets_prints_registry(self, capsys):
        assert main(("check",)) == 0
        assert "examples" in capsys.readouterr().out


class TestCheckJson:
    def test_json_parses_and_summarises(self, fake_targets, capsys):
        fake_targets(
            [
                Diagnostic("PRG009", "warning", "unwritten", target="p"),
                Diagnostic("PROT005", "info", "cert", target="q"),
            ]
        )
        assert main(("check", "fake", "--json")) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"] == {"error": 0, "warning": 1, "info": 1}
        assert doc["fail_on"] == "warning"
        assert doc["targets"] == ["fake"]
        assert {d["code"] for d in doc["diagnostics"]} == {"PRG009", "PROT005"}

    def test_json_clean_document(self, fake_targets, capsys):
        fake_targets([])
        assert main(("check", "fake", "--json")) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["diagnostics"] == []


class TestCheckRealTargets:
    def test_examples_clean_at_error_bar(self, capsys):
        assert main(("check", "examples", "--fail-on", "error")) == 0

    def test_baselines_clean_at_warning_bar(self, capsys):
        # The baselines carry only info findings (silence certificates).
        assert main(("check", "baselines")) == 0


class TestLintCli:
    def test_lint_source_tree_clean(self, capsys):
        assert main(("lint",)) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_finding_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n", encoding="utf-8")
        assert main(("lint", str(bad))) == 1
        assert "LNT001" in capsys.readouterr().out

    def test_lint_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import os\n", encoding="utf-8")
        assert main(("lint", str(bad), "--json")) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["diagnostics"][0]["code"] == "LNT006"

    def test_lint_missing_path_exits_two(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(("lint", str(tmp_path / "missing")))
        assert excinfo.value.code == 2
