"""Tests for the python -m repro command-line interface."""

import pytest

from repro.__main__ import FULL, QUICK, main


class TestRegistry:
    def test_quick_subset_of_full(self):
        assert set(QUICK) <= set(FULL)

    def test_expected_ids_present(self):
        for name in ("table1", "theorem1", "theorem3", "figure2", "ablation"):
            assert name in FULL


class TestInvocation:
    def test_single_experiment(self, capsys):
        assert main(("figure2",)) == 0
        out = capsys.readouterr().out
        assert "figure2" in out and "all match: True" in out

    def test_multiple_experiments(self, capsys):
        assert main(("figures-lowering", "figure4")) == 0
        out = capsys.readouterr().out
        assert "figure3" in out and "transitions per instruction" in out

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit) as excinfo:
            main(("nope",))
        assert excinfo.value.code == 2

    def test_theorem5_runs(self, capsys):
        assert main(("theorem5",)) == 0
        assert "P16 bound" in capsys.readouterr().out
