"""Tests for the convergence-cost experiment (X3)."""

from repro.experiments import measure_convergence, run_convergence


class TestMeasure:
    def test_accepting_sample(self):
        sample = measure_convergence(1, 3, seed=0)
        assert sample.accepting
        assert sample.steps_to_stabilise is not None
        assert sample.steps_to_stabilise > 0

    def test_rejecting_sample(self):
        sample = measure_convergence(1, 1, seed=0)
        assert not sample.accepting
        # Started at the canonical good configuration: no restart needed.
        assert sample.steps_to_stabilise == 0
        assert sample.restarts == 0

    def test_boundary_definition(self):
        assert measure_convergence(1, 2, seed=1).accepting
        assert not measure_convergence(2, 9, seed=1).accepting


class TestReport:
    def test_report_and_medians(self):
        report = run_convergence(2, trials=2, seed=0)
        assert len(report.samples) == 2 * 3 * 2  # n in {1,2} x 3 inputs x 2
        m1 = report.median_steps(1, True)
        m2 = report.median_steps(2, True)
        assert m1 is not None and m2 is not None
        assert m2 > m1  # level-2 verification costs more

    def test_render(self):
        report = run_convergence(1, trials=1, seed=0)
        text = report.render()
        assert "restarts" in text

    def test_median_none_when_absent(self):
        report = run_convergence(1, trials=1, seed=0)
        assert report.median_steps(9, True) is None
