"""Integration: Theorem 3 — the n-level program decides m >= k_n.

These are the headline behavioural tests at the population-program level:
decisions across the threshold boundary for n = 1, 2, 3, under both
canonical and non-canonical restart sampling."""

import pytest

from repro.core import Threshold
from repro.lipton import (
    build_threshold_program,
    canonical_restart_policy,
    suggested_quiet_window,
    threshold,
    threshold_predicate,
)
from repro.programs import MixtureRestart, UniformRestart, decide_program


class TestBoundaryDecisions:
    @pytest.mark.parametrize("m", [1, 2, 3, 5])
    def test_n1(self, lipton1_program, m):
        got = decide_program(
            lipton1_program,
            {"x1": m},
            seed=m,
            restart_policy=canonical_restart_policy(1),
            quiet_window=suggested_quiet_window(1),
        )
        assert got == (m >= 2)

    @pytest.mark.parametrize("m", [1, 8, 9, 10, 11, 16])
    def test_n2(self, lipton2_program, m):
        got = decide_program(
            lipton2_program,
            {"x1": m},
            seed=m,
            restart_policy=canonical_restart_policy(2),
            quiet_window=suggested_quiet_window(2),
            max_steps=20_000_000,
        )
        assert got == (m >= 10)

    @pytest.mark.parametrize("m", [30, 59, 60, 61])
    def test_n3(self, lipton3_program, m):
        got = decide_program(
            lipton3_program,
            {"x1": m},
            seed=m,
            restart_policy=canonical_restart_policy(3),
            quiet_window=suggested_quiet_window(3),
            max_steps=60_000_000,
        )
        assert got == (m >= 60)


class TestInputsAcrossRegisters:
    """The predicate is on the *total*; where units start is irrelevant."""

    @pytest.mark.parametrize(
        "initial",
        [
            {"R": 10},
            {"yb2": 10},
            {"x1": 3, "y1": 3, "x2": 4},
            {"xb1": 5, "yb1": 5},
        ],
    )
    def test_n2_total_ten_accepts(self, lipton2_program, initial):
        got = decide_program(
            lipton2_program,
            initial,
            seed=sum(initial.values()),
            restart_policy=canonical_restart_policy(2),
            quiet_window=suggested_quiet_window(2),
            max_steps=20_000_000,
        )
        assert got is True

    def test_n2_total_nine_rejects(self, lipton2_program):
        got = decide_program(
            lipton2_program,
            {"R": 4, "x2": 5},
            seed=9,
            restart_policy=canonical_restart_policy(2),
            quiet_window=suggested_quiet_window(2),
            max_steps=20_000_000,
        )
        assert got is False


class TestFairRestartSampling:
    def test_n1_with_pure_uniform_restarts(self, lipton1_program):
        """Uniform restarts sample genuinely fair runs; n = 1 converges."""
        for m in (1, 2, 4):
            got = decide_program(
                lipton1_program,
                {"x1": m},
                seed=m * 7,
                restart_policy=UniformRestart(),
                quiet_window=20_000,
                max_steps=10_000_000,
            )
            assert got == (m >= 2)

    def test_n2_with_mixture_restarts(self, lipton2_program):
        """Mostly-uniform restarts with occasional canonical jumps — fair
        and convergent."""
        policy = MixtureRestart(
            UniformRestart(), canonical_restart_policy(2), 0.9
        )
        for m in (5, 10):
            got = decide_program(
                lipton2_program,
                {"x1": m},
                seed=m,
                restart_policy=policy,
                quiet_window=suggested_quiet_window(2),
                max_steps=30_000_000,
            )
            assert got == (m >= 10)


class TestPredicate:
    def test_predicate_object(self):
        predicate = threshold_predicate(2)
        assert predicate == Threshold(10)
        assert predicate(10) and not predicate(9)
