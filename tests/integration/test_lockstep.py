"""Integration: Proposition 16 via lockstep co-simulation.

Drive the converted protocol with a random scheduler and verify that the
sequence of π-image configurations it passes through is a legal run of the
population machine — for several programs and inputs."""

import pytest

from repro.experiments import LockstepViolation, lockstep_check
from repro.conversion import compile_program
from repro.programs import figure1_program, simple_threshold_program


class TestLockstep:
    def test_thr2_long_run(self, thr2_pipeline):
        verified = lockstep_check(
            thr2_pipeline, {"x": 3}, seed=0, interactions=60_000
        )
        assert verified > 1_000

    def test_thr2_empty_registers(self, thr2_pipeline):
        verified = lockstep_check(
            thr2_pipeline, {}, seed=1, interactions=20_000
        )
        assert verified > 100

    def test_figure1_with_restarts(self):
        """Covers the restart helper and swap gadgets (register map!)."""
        pipeline = compile_program(figure1_program(), "figure1")
        verified = lockstep_check(
            pipeline, {"x": 2, "z": 1}, seed=2, interactions=40_000
        )
        assert verified > 500

    def test_different_seeds_agree(self, thr2_pipeline):
        for seed in range(3):
            assert lockstep_check(
                thr2_pipeline, {"x": 2}, seed=seed, interactions=10_000
            ) > 100

    def test_corrupted_machine_is_caught(self, thr2_pipeline):
        """Sanity check of the checker itself: verifying against a machine
        with a different program must raise."""
        other = compile_program(simple_threshold_program(5), "thr5")
        hybrid = type(thr2_pipeline)(
            program=thr2_pipeline.program,
            program_size=thr2_pipeline.program_size,
            machine=other.machine,  # wrong machine for this conversion
            machine_size=other.machine_size,
            conversion=thr2_pipeline.conversion,
            inner_protocol=thr2_pipeline.inner_protocol,
            protocol=thr2_pipeline.protocol,
            shift=thr2_pipeline.shift,
        )
        with pytest.raises(Exception):
            lockstep_check(hybrid, {"x": 3}, seed=0, interactions=40_000)
