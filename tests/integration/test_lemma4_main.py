"""Integration: Lemma 4 — Main's trichotomy, checked exhaustively for
small totals and by sampling for larger ones."""

import pytest

from repro.experiments import (
    check_lemma4_case,
    enumerate_register_configurations,
    observe_main_behaviour,
    run_lemma4,
)
from repro.lipton import MainBehaviour, classify


class TestEnumeration:
    def test_counts_are_stars_and_bars(self):
        # n=1: 5 registers; total 2 -> C(6, 4) = 15 configurations.
        configs = list(enumerate_register_configurations(1, 2))
        assert len(configs) == 15

    def test_totals_preserved(self):
        for config in enumerate_register_configurations(1, 3):
            assert sum(config.values()) == 3


class TestExhaustiveSmallTotals:
    @pytest.mark.parametrize("total", [1, 2, 3])
    def test_all_configurations_consistent(self, total):
        report = run_lemma4(1, total, seed=total)
        inconsistent = [t for t in report.trials if not t.consistent]
        assert not inconsistent, inconsistent[:3]


class TestSampledLargerTotals:
    def test_n1_total_five_sampled(self):
        report = run_lemma4(1, 5, sample=40, seed=9)
        assert report.consistent == len(report.trials)

    def test_n2_sampled(self):
        report = run_lemma4(2, 4, sample=25, seed=3, quiet_window=50_000,
                            max_steps=5_000_000)
        assert report.consistent == len(report.trials)


class TestSpecificCases:
    def test_n_proper_stabilises_true(self, lipton1_program):
        config = {"xb1": 1, "yb1": 1, "R": 2}  # 1-proper, surplus in R
        assert classify(config, 1).behaviour == MainBehaviour.STABILISE_TRUE
        # The surplus in R makes restarts possible too (AssertEmpty may
        # legitimately fire); check_lemma4_case retries through them.
        observed = check_lemma4_case(
            lipton1_program, config, MainBehaviour.STABILISE_TRUE, base_seed=1
        )
        assert observed == MainBehaviour.STABILISE_TRUE

    def test_low_and_empty_stabilises_false(self, lipton1_program):
        config = {"xb1": 1}
        assert classify(config, 1).behaviour == MainBehaviour.STABILISE_FALSE
        observed = observe_main_behaviour(lipton1_program, config, seed=1)
        assert observed == MainBehaviour.STABILISE_FALSE

    def test_high_restarts(self, lipton1_program):
        config = {"x1": 1, "xb1": 1, "y1": 1, "yb1": 1}  # 1-high
        assert classify(config, 1).behaviour == MainBehaviour.RESTART
        observed = observe_main_behaviour(lipton1_program, config, seed=1)
        assert observed == MainBehaviour.RESTART

    def test_low_but_reserve_nonempty_restarts(self, lipton1_program):
        config = {"xb1": 1, "R": 1}  # 1-low but not 2-empty, m = 2
        assert classify(config, 1).behaviour == MainBehaviour.RESTART
        observed = observe_main_behaviour(lipton1_program, config, seed=2)
        assert observed == MainBehaviour.RESTART
