"""Tests for the 1-awareness probes (X1)."""

import pytest

from repro.analysis import (
    certificate_states_exact,
    certificate_states_sampled,
    reachable_states,
    sampled_occupied_states,
)
from repro.baselines import binary_threshold_protocol, unary_threshold_protocol
from repro.core import Multiset


class TestReachableStates:
    def test_unary_below_threshold_misses_witness(self):
        k = 4
        pp = unary_threshold_protocol(k)
        states = reachable_states(pp, Multiset({1: k - 1}))
        assert k not in states

    def test_unary_above_threshold_hits_witness(self):
        k = 4
        pp = unary_threshold_protocol(k)
        states = reachable_states(pp, Multiset({1: k}))
        assert k in states


class TestExactProbe:
    def test_unary_certificate_is_witness_state(self):
        k = 4
        probe = certificate_states_exact(
            unary_threshold_protocol(k),
            lambda x: Multiset({1: x}),
            below=range(1, k),
            above=[k, k + 1],
        )
        assert probe.certificate_states == frozenset({k})
        assert probe.is_one_aware_evidence

    def test_binary_certificates_nonempty(self):
        k = 5
        probe = certificate_states_exact(
            binary_threshold_protocol(k),
            lambda x: Multiset({"p0": x}),
            below=range(1, k),
            above=[k, k + 2],
        )
        assert probe.is_one_aware_evidence
        # The full collector and TOP are exactly the certificates.
        names = {str(s) for s in probe.certificate_states}
        assert "TOP" in names

    def test_below_states_subset_of_above(self):
        k = 3
        probe = certificate_states_exact(
            unary_threshold_protocol(k),
            lambda x: Multiset({1: x}),
            below=[1, 2],
            above=[3, 4],
        )
        assert probe.below_states <= probe.above_states


class TestSampledProbe:
    def test_sampled_occupied_states_growth(self, thr2_pipeline):
        initial = next(iter(thr2_pipeline.protocol.input_states))
        few = sampled_occupied_states(
            thr2_pipeline.protocol,
            Multiset({initial: thr2_pipeline.shift + 2}),
            seed=0,
            steps=200,
        )
        many = sampled_occupied_states(
            thr2_pipeline.protocol,
            Multiset({initial: thr2_pipeline.shift + 2}),
            seed=0,
            steps=20_000,
        )
        assert few <= many

    def test_sampled_probe_on_unary_finds_witness(self):
        k = 4
        probe = certificate_states_sampled(
            unary_threshold_protocol(k),
            lambda x: Multiset({1: x}),
            below=[k - 1],
            above=[k + 2],
            seed=0,
            steps=5_000,
            runs_per_input=2,
        )
        assert k in probe.certificate_states

    def test_sampled_probe_monotone_below_above(self):
        k = 3
        probe = certificate_states_sampled(
            unary_threshold_protocol(k),
            lambda x: Multiset({1: x}),
            below=[2],
            above=[4],
            seed=0,
            steps=3_000,
            runs_per_input=2,
        )
        assert probe.below_states and probe.above_states


class TestPoisoning:
    def test_unary_witness_poisons(self):
        """One agent in the witness state flips the verdict: 1-aware."""
        from repro.analysis import poisoning_probe_exact

        k = 5
        probe = poisoning_probe_exact(
            unary_threshold_protocol(k), Multiset({1: 2}), states=[k]
        )
        assert not probe.resistant
        assert probe.poisoning_states == frozenset({k})

    def test_unary_benign_state_does_not_poison(self):
        from repro.analysis import poisoning_probe_exact

        k = 5
        probe = poisoning_probe_exact(
            unary_threshold_protocol(k), Multiset({1: 2}), states=[1, 0]
        )
        assert probe.resistant

    def test_binary_collector_poisons(self):
        from repro.analysis import poisoning_probe_exact
        from repro.baselines.binary import TOP

        k = 5
        probe = poisoning_probe_exact(
            binary_threshold_protocol(k), Multiset({"p0": 2}), states=[TOP]
        )
        assert not probe.resistant

    def test_construction_resists_poisoning(self, lipton1_pipeline):
        """Non-1-awareness, operationally: even an agent planted in an
        accepting opinion-true / OF-true state is corrected — the run on a
        below-threshold population stabilises to false (Section 2's
        'accepts provisionally and continues to check')."""
        from repro.analysis import poisoning_probe_sampled
        from repro.conversion import OpinionState, PointerState

        protocol = lipton1_pipeline.protocol
        initial = next(iter(protocol.input_states))
        below = Multiset({initial: lipton1_pipeline.shift})  # m = 0 < 2
        of_true = next(
            s
            for s in protocol.states
            if isinstance(s, OpinionState)
            and isinstance(s.base, PointerState)
            and s.base.pointer == "OF"
            and s.base.value is True
            and s.opinion
        )
        probe = poisoning_probe_sampled(
            protocol,
            below,
            states=[of_true],
            seed=3,
            max_interactions=2_000_000,
            convergence_window=60_000,
        )
        assert probe.resistant, probe.state_verdicts
