"""Protocol checker: the counter abstraction and the PROT* codes.

The seeded known-bad protocols pin the checker's contract: a dead
transition MUST surface as PROT001 and an unreachable state as PROT002 —
these are the regressions the static layer exists to catch.
"""

import pytest

from repro.analysis.statics import (
    check_protocol,
    check_table_conservation,
    coverable_states,
    self_silent_states,
)
from repro.analysis.statics.protocol_checks import DETAIL_LIMIT
from repro.core.protocol import PopulationProtocol, Transition


def codes(diags):
    return {d.code for d in diags}


def only(diags, code):
    return [d for d in diags if d.code == code]


# ----------------------------------------------------------------------
# Seeded known-bad artifacts
# ----------------------------------------------------------------------
def test_dead_transition_is_flagged():
    """(C, C -> D, D) can never fire: C is not coverable from input {A}."""
    pp = PopulationProtocol(
        states={"A", "B", "C", "D"},
        transitions=[("A", "A", "B", "B"), ("C", "C", "D", "D")],
        input_states={"A"},
        accepting_states={"B"},
        name="seeded-dead",
    )
    diags = check_protocol(pp)
    dead = only(diags, "PROT001")
    assert len(dead) == 1
    assert "'C'" in dead[0].location
    # C and D are also unreachable states.
    assert {d.location for d in only(diags, "PROT002")} == {"'C'", "'D'"}


def test_reachable_protocol_has_no_dead_findings():
    pp = PopulationProtocol(
        states={"A", "B"},
        transitions=[("A", "A", "A", "B")],
        input_states={"A"},
        accepting_states={"B"},
    )
    diags = check_protocol(pp)
    assert "PROT001" not in codes(diags)
    assert "PROT002" not in codes(diags)


def test_shadowed_transition_is_flagged():
    """Same ordered pre, same post *multiset* (order swapped) — the second
    transition can never change the outcome distribution's support."""
    pp = PopulationProtocol(
        states={"A", "B", "C"},
        transitions=[("A", "A", "B", "C"), ("A", "A", "C", "B")],
        input_states={"A"},
        accepting_states={"B"},
    )
    assert len(only(check_protocol(pp), "PROT003")) == 1


def test_noop_transition_is_reported_as_info():
    pp = PopulationProtocol(
        states={"A"},
        transitions=[("A", "A", "A", "A")],
        input_states={"A"},
        accepting_states=set(),
    )
    noops = only(check_protocol(pp), "PROT006")
    assert noops and all(d.severity == "info" for d in noops)


def test_trivial_output_partition_both_sides():
    nothing_accepts = PopulationProtocol(
        states={"A", "B"},
        transitions=[("A", "A", "B", "B")],
        input_states={"A"},
        accepting_states=set(),
        name="never-true",
    )
    all_accept = PopulationProtocol(
        states={"A", "B"},
        transitions=[("A", "A", "B", "B")],
        input_states={"A"},
        accepting_states={"A", "B"},
        name="never-false",
    )
    assert "can never output true" in only(check_protocol(nothing_accepts), "PROT004")[0].message
    assert "can never output false" in only(check_protocol(all_accept), "PROT004")[0].message
    # An unreachable accepting state must not count as "can output true".
    unreachable_acceptor = PopulationProtocol(
        states={"A", "Z"},
        transitions=[],
        input_states={"A"},
        accepting_states={"Z"},
    )
    assert only(check_protocol(unreachable_acceptor), "PROT004")


# ----------------------------------------------------------------------
# The abstraction itself
# ----------------------------------------------------------------------
def test_coverable_states_saturates_chains():
    """B needs A+A, C needs A+B, D needs B+C — all coverable by gluing
    disjoint witness populations (the abstraction's soundness argument)."""
    pp = PopulationProtocol(
        states={"A", "B", "C", "D"},
        transitions=[
            ("A", "A", "A", "B"),
            ("A", "B", "A", "C"),
            ("B", "C", "D", "D"),
        ],
        input_states={"A"},
        accepting_states={"D"},
    )
    assert coverable_states(pp) == frozenset({"A", "B", "C", "D"})


def test_coverable_states_seeds_only_inputs():
    pp = PopulationProtocol(
        states={"A", "B", "C"},
        transitions=[("B", "B", "C", "C")],
        input_states={"A"},
        accepting_states=set(),
    )
    assert coverable_states(pp) == frozenset({"A"})


def test_self_silent_states(majority):
    """A state with a productive (q, q) transition is not self-silent."""
    silent = self_silent_states(majority)
    for t in majority.transitions:
        if t.q == t.r and not t.is_noop():
            assert t.q not in silent


def test_silence_certificate_on_majority(majority):
    certs = only(check_protocol(majority), "PROT005")
    assert len(certs) == 1
    data = certs[0].data
    assert data["accepting_total"] >= 1 and data["rejecting_total"] >= 1


# ----------------------------------------------------------------------
# Conservation (PROT007) and aggregation
# ----------------------------------------------------------------------
def test_conservation_clean_on_baselines(majority, unary5, binary6, remainder3):
    for pp in (majority, unary5, binary6, remainder3):
        assert check_table_conservation(pp) == []


def test_aggregation_caps_itemised_findings():
    """> DETAIL_LIMIT dead transitions: itemised findings cap out and one
    summary diagnostic carries the exact remainder."""
    n = DETAIL_LIMIT + 10
    states = {"A"} | {f"u{i}" for i in range(n)} | {f"v{i}" for i in range(n)}
    transitions = [(f"u{i}", f"u{i}", f"v{i}", f"v{i}") for i in range(n)]
    pp = PopulationProtocol(
        states=states,
        transitions=transitions,
        input_states={"A"},
        accepting_states=set(),
        name="aggregated",
    )
    dead = only(check_protocol(pp), "PROT001")
    assert len(dead) == DETAIL_LIMIT + 1
    assert dead[-1].data["total"] == n
    assert "more not itemised" in dead[-1].message


def test_baselines_have_no_error_findings(majority, unary5, binary6, remainder3):
    for pp in (majority, unary5, binary6, remainder3):
        errors = [d for d in check_protocol(pp) if d.severity == "error"]
        assert errors == [], f"{pp.name}: {errors}"
