"""Machine checker: CFG reachability over instruction addresses, pointer
domains and the lowering's return-pointer discipline.

The seeded known-bad machine (an instruction no jump ever reaches) pins
MCH001.
"""

from repro.analysis.statics import (
    check_machine,
    instruction_successors,
    reachable_instructions,
)
from repro.machines.lowering import lower_program
from repro.machines.machine import (
    AssignInstr,
    BOOL_DOMAIN,
    CF,
    DetectInstr,
    IP,
    MoveInstr,
    OF,
    PopulationMachine,
    register_map_pointer,
)


def codes(diags):
    return {d.code for d in diags}


def only(diags, code):
    return [d for d in diags if d.code == code]


def machine_with(instructions, *, ip_domain, extra_domains=None, name="m"):
    domains = {
        OF: BOOL_DOMAIN,
        CF: BOOL_DOMAIN,
        IP: ip_domain,
        register_map_pointer("x"): ("x", "y"),
        register_map_pointer("y"): ("y",),
        register_map_pointer("#"): ("x",),
    }
    domains.update(extra_domains or {})
    return PopulationMachine(
        registers=("x", "y"),
        pointer_domains=domains,
        instructions=tuple(instructions),
        name=name,
    )


# ----------------------------------------------------------------------
# Seeded known-bad artifact
# ----------------------------------------------------------------------
def test_unreachable_instruction_is_flagged():
    """Instruction 2 is skipped by the unconditional jump 1 → 3."""
    m = machine_with(
        [
            AssignInstr(IP, CF, {False: 3, True: 3}),
            MoveInstr("x", "y"),  # unreachable
            AssignInstr(IP, CF, {False: 3, True: 3}),  # spin
        ],
        ip_domain=(1, 2, 3),
        name="seeded-unreachable",
    )
    findings = only(check_machine(m), "MCH001")
    assert len(findings) == 1
    assert findings[0].location == "2"
    assert reachable_instructions(m) == {1, 3}


def test_straightline_machine_is_fully_reachable():
    m = machine_with(
        [
            MoveInstr("x", "y"),
            DetectInstr("x"),
            AssignInstr(IP, CF, {False: 1, True: 1}),
        ],
        ip_domain=(1, 2, 3),
    )
    assert reachable_instructions(m) == {1, 2, 3}
    assert "MCH001" not in codes(check_machine(m))


def test_successors_shapes():
    m = machine_with(
        [
            DetectInstr("x"),
            AssignInstr(IP, CF, {False: 1, True: 3}),
            MoveInstr("x", "y"),
        ],
        ip_domain=(1, 2, 3),
    )
    assert instruction_successors(m, 1) == [2]  # detect falls through
    assert instruction_successors(m, 2) == [1, 3]  # branch: both targets
    assert instruction_successors(m, 3) == []  # stepping past L hangs


def test_end_hang_is_reported():
    m = machine_with(
        [MoveInstr("x", "y")],
        ip_domain=(1,),
    )
    hangs = only(check_machine(m), "MCH004")
    assert len(hangs) == 1 and hangs[0].severity == "info"


def test_dead_pointer_domain_value():
    """V[x] can hold 'y' per its domain, but no assignment ever produces
    it and the initial register map is the identity."""
    m = machine_with(
        [
            DetectInstr("x"),
            AssignInstr(IP, CF, {False: 1, True: 1}),
        ],
        ip_domain=(1, 2),
    )
    dead = only(check_machine(m), "MCH002")
    assert len(dead) == 1
    assert dead[0].location == register_map_pointer("x")


def test_assigned_domain_value_is_live():
    vx = register_map_pointer("x")
    m = machine_with(
        [
            AssignInstr(vx, vx, {"x": "y", "y": "x"}),
            AssignInstr(IP, CF, {False: 1, True: 1}),
        ],
        ip_domain=(1, 2),
    )
    assert "MCH002" not in codes(check_machine(m))


def test_indirect_jump_that_rewrites_addresses():
    ret = "P[Helper]"
    m = machine_with(
        [
            AssignInstr(ret, CF, {False: 1, True: 1}),
            AssignInstr(IP, ret, {1: 2, 2: 2}),  # rewrites stored address 1 → 2
        ],
        ip_domain=(1, 2),
        extra_domains={ret: (1, 2)},
    )
    findings = only(check_machine(m), "MCH003")
    assert any("rewrites stored addresses" in d.message for d in findings)


def test_nonconstant_write_into_return_pointer():
    ret = "P[Helper]"
    m = machine_with(
        [
            AssignInstr(ret, CF, {False: 1, True: 2}),  # depends on CF
            AssignInstr(IP, CF, {False: 1, True: 1}),
        ],
        ip_domain=(1, 2),
        extra_domains={ret: (1, 2)},
    )
    findings = only(check_machine(m), "MCH003")
    assert any("non-constant write" in d.message for d in findings)


# ----------------------------------------------------------------------
# Lowered machines
# ----------------------------------------------------------------------
def test_lowered_machines_have_no_error_findings(thr2_machine):
    from repro.lipton import build_threshold_program

    for machine in (thr2_machine, lower_program(build_threshold_program(1), "l1")):
        errors = [d for d in check_machine(machine) if d.severity == "error"]
        assert errors == [], f"{machine.name}: {errors}"


def test_lowered_machine_respects_return_discipline(thr2_machine):
    """The lowering's call protocol: every indirect jump through a P[...]
    pointer forwards addresses verbatim, every P[...] write is constant."""
    assert only(check_machine(thr2_machine), "MCH003") == []
