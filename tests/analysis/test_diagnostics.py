"""The shared Diagnostic record: serialisation, severity algebra, rendering."""

import json

import pytest

from repro.core.diagnostics import (
    Diagnostic,
    DiagnosticError,
    at_or_above,
    count_by_severity,
    diagnostics_to_json,
    max_severity,
    render_diagnostics,
    severity_rank,
)

D_ERR = Diagnostic("PRG001", "error", "boom", target="p", location="Main")
D_WARN = Diagnostic("PROT001", "warning", "dead", target="q")
D_INFO = Diagnostic("PROT005", "info", "cert")


def test_severity_ranks_escalate():
    assert severity_rank("info") < severity_rank("warning") < severity_rank("error")
    # Unknown severities compare as maximally severe, never silently low.
    assert severity_rank("catastrophic") == severity_rank("error")


def test_unknown_severity_rejected_at_construction():
    with pytest.raises(ValueError):
        Diagnostic("X001", "fatal", "nope")


def test_dict_roundtrip_preserves_everything():
    diag = Diagnostic(
        "MCH002", "warning", "dead value", target="m", location="V[x]",
        data={"pointer": "V[x]", "value": 3},
    )
    assert Diagnostic.from_dict(diag.to_dict()) == diag
    # Sparse fields stay out of the dict (stable cache keys, small JSON).
    assert "data" not in D_INFO.to_dict()
    assert "target" not in D_INFO.to_dict()


def test_max_severity_and_counts():
    batch = [D_INFO, D_WARN, D_ERR, D_WARN]
    assert max_severity(batch) == "error"
    assert max_severity([]) is None
    assert count_by_severity(batch) == {"error": 1, "warning": 2, "info": 1}
    # All three keys always present, even on a clean batch.
    assert count_by_severity([]) == {"error": 0, "warning": 0, "info": 0}


def test_at_or_above_thresholds():
    batch = [D_INFO, D_WARN, D_ERR]
    assert at_or_above(batch, "info") == batch
    assert at_or_above(batch, "warning") == [D_WARN, D_ERR]
    assert at_or_above(batch, "error") == [D_ERR]


def test_render_puts_errors_first_and_truncates():
    text = render_diagnostics([D_INFO, D_WARN, D_ERR])
    lines = text.splitlines()
    assert lines[0].startswith("error")
    assert lines[-1].startswith("info")
    truncated = render_diagnostics([D_INFO, D_WARN, D_ERR], limit=2)
    assert "1 more finding(s)" in truncated


def test_json_document_shape():
    doc = json.loads(diagnostics_to_json([D_ERR, D_INFO], fail_on="warning"))
    assert doc["summary"] == {"error": 1, "warning": 0, "info": 1}
    assert doc["fail_on"] == "warning"
    assert doc["diagnostics"][0]["code"] == "PRG001"


def test_diagnostic_error_carries_findings():
    err = DiagnosticError([D_ERR, D_WARN])
    assert err.diagnostics == [D_ERR, D_WARN]
    assert "PRG001" in str(err)
