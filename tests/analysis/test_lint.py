"""The determinism & fork-safety lint: rules, pragmas, and the dogfood
gate (the repository's own source must stay clean)."""

from pathlib import Path

from repro.lint import lint_paths, lint_source

SRC = Path(__file__).resolve().parent.parent.parent / "src" / "repro"


def codes(diags):
    return {d.code for d in diags}


def lint(source, path="core/module.py"):
    """Lint a snippet under a pool-crossing path (so every rule applies)."""
    return lint_source(source, path)


# ----------------------------------------------------------------------
# LNT001 / LNT002 — global RNG and time seeds
# ----------------------------------------------------------------------
def test_global_rng_call_flagged():
    diags = lint("import random\nx = random.random()\n")
    assert codes(diags) == {"LNT001"}


def test_rng_constructor_allowed():
    assert lint("import random\nrng = random.Random(7)\n") == []


def test_numpy_global_rng_flagged():
    diags = lint("import numpy as np\nx = np.random.randint(3)\n")
    assert "LNT001" in codes(diags)
    assert "LNT001" not in codes(
        lint("import numpy as np\nrng = np.random.default_rng(7)\n")
    )


def test_time_derived_seed_flagged():
    diags = lint(
        "import random\nimport time\nrng = random.Random(time.time_ns())\n"
    )
    assert "LNT002" in codes(diags)


def test_seed_method_with_wall_clock_flagged():
    diags = lint(
        "import time\n"
        "def reseed(rng):\n"
        "    rng.seed(int(time.time()))\n"
    )
    assert "LNT002" in codes(diags)


def test_explicit_seed_clean():
    assert lint("import random\nrng = random.Random(12345)\n") == []


# ----------------------------------------------------------------------
# LNT003 — RNG draws under unordered iteration
# ----------------------------------------------------------------------
def test_rng_draw_in_set_iteration_flagged():
    source = (
        "def scramble(rng, states):\n"
        "    for s in set(states):\n"
        "        rng.random()\n"
    )
    assert "LNT003" in codes(lint(source))


def test_rng_draw_in_sorted_iteration_clean():
    source = (
        "def scramble(rng, states):\n"
        "    for s in sorted(set(states)):\n"
        "        rng.random()\n"
    )
    assert "LNT003" not in codes(lint(source))


# ----------------------------------------------------------------------
# LNT004 — pool-crossing pickle safety
# ----------------------------------------------------------------------
LOCKED_CLASS = (
    "import threading\n"
    "class Holder:\n"
    "    def __init__(self):\n"
    "        self.lock = threading.Lock()\n"
)


def test_unpicklable_pool_crossing_class_flagged():
    assert "LNT004" in codes(lint(LOCKED_CLASS, path="core/holder.py"))


def test_pickle_hook_silences_lnt004():
    source = LOCKED_CLASS + (
        "    def __getstate__(self):\n"
        "        return {}\n"
    )
    assert "LNT004" not in codes(lint(source, path="core/holder.py"))


def test_lnt004_scoped_to_pool_crossing_packages():
    """The same class outside the pool-crossing packages is fine — e.g.
    the live-telemetry server holds locks and never crosses a pool."""
    assert "LNT004" not in codes(lint(LOCKED_CLASS, path="observability/live.py"))


# ----------------------------------------------------------------------
# LNT005 / LNT006 — module state and imports
# ----------------------------------------------------------------------
def test_module_level_mutable_flagged_unless_all_caps():
    assert "LNT005" in codes(lint("cache = {}\n"))
    assert "LNT005" not in codes(lint("CACHE = {}\n"))
    assert "LNT005" not in codes(lint("__all__ = []\n"))


def test_unused_import_flagged_but_not_in_init():
    assert "LNT006" in codes(lint("import os\n"))
    assert lint_source("import os\n", "core/__init__.py") == []


def test_all_listing_counts_as_use():
    assert "LNT006" not in codes(
        lint("from os import path\n__all__ = ['path']\n")
    )


# ----------------------------------------------------------------------
# LNT007 — population size captured at construction time
# ----------------------------------------------------------------------
def test_init_size_snapshot_flagged():
    source = (
        "class S:\n"
        "    def __init__(self, config):\n"
        "        self.m = config.size\n"
    )
    assert "LNT007" in codes(lint(source))
    assert "LNT007" in codes(
        lint(source.replace("config.size", "len(config)"))
    )


def test_non_population_names_not_flagged():
    source = (
        "class S:\n"
        "    def __init__(self, items):\n"
        "        self.m = len(items)\n"
    )
    assert "LNT007" not in codes(lint(source))


def test_closure_over_size_snapshot_flagged():
    source = (
        "def run(config):\n"
        "    m = config.size\n"
        "    def finish():\n"
        "        return m * 2\n"
        "    return finish\n"
    )
    assert "LNT007" in codes(lint(source))
    lam = "def run(config):\n    m = config.size\n    return lambda: m + 1\n"
    assert "LNT007" in codes(lint(lam))


def test_refreshed_local_not_flagged():
    # A local reassigned elsewhere (e.g. at a fault barrier) is live, not
    # a stale snapshot — the rule must stay quiet.
    source = (
        "def run(config):\n"
        "    m = config.size\n"
        "    def finish():\n"
        "        return m * 2\n"
        "    m = config.size\n"
        "    return finish\n"
    )
    assert "LNT007" not in codes(lint(source))


def test_shadowing_parameter_not_flagged():
    source = (
        "def run(config):\n"
        "    m = config.size\n"
        "    def finish(m):\n"
        "        return m * 2\n"
        "    return finish\n"
    )
    assert "LNT007" not in codes(lint(source))


def test_lnt007_pragma_suppressible():
    source = (
        "class S:\n"
        "    def __init__(self, config):\n"
        "        self.m = config.size  # lint-ok: LNT007\n"
    )
    assert lint(source) == []


# ----------------------------------------------------------------------
# Engine: pragmas, syntax errors, ordering
# ----------------------------------------------------------------------
def test_blanket_pragma_waives_line():
    assert lint("import random\nx = random.random()  # lint-ok\n") == []


def test_code_specific_pragma_waives_only_listed_code():
    assert lint("import random\nx = random.random()  # lint-ok: LNT001\n") == []
    diags = lint("import random\nx = random.random()  # lint-ok: LNT999\n")
    assert "LNT001" in codes(diags)


def test_syntax_error_becomes_lnt000():
    diags = lint("def broken(:\n")
    assert len(diags) == 1
    assert diags[0].code == "LNT000" and diags[0].severity == "error"


def test_findings_sorted_by_line():
    source = "import os\nimport random\nx = random.random()\n"
    diags = lint(source)
    lines = [int(d.location) for d in diags]
    assert lines == sorted(lines)


# ----------------------------------------------------------------------
# The dogfood gate
# ----------------------------------------------------------------------
def test_repository_source_is_lint_clean():
    """`python -m repro lint` must stay clean; this is the same walk."""
    findings = lint_paths([SRC])
    rendered = "\n".join(d.render() for d in findings)
    assert findings == [], f"src/repro lint findings:\n{rendered}"
