"""Program checker: liveness, reachability and swap-size cross-checks.

The seeded known-bad program (a register read but never written) pins
PRG009 — the paper's programs hang on exactly this mistake, a move out of
a register no instruction fills.
"""

from repro.analysis.statics import check_program
from repro.programs.ast import Detect, If, Move, Restart, Return, Swap, While
from repro.programs.builder import procedure, program, seq, while_true


def codes(diags):
    return {d.code for d in diags}


def only(diags, code):
    return [d for d in diags if d.code == code]


# ----------------------------------------------------------------------
# Seeded known-bad artifacts
# ----------------------------------------------------------------------
def test_read_never_written_register_is_flagged():
    """``y`` is detected and moved out of, but nothing ever moves into it."""
    main = procedure(
        "Main",
        While(Detect("y"), seq(Move("y", "x"))),
        while_true(),
    )
    prog = program(["x", "y"], [main])
    findings = only(check_program(prog, name="seeded-unwritten"), "PRG009")
    assert len(findings) == 1
    assert findings[0].location == "y"
    assert findings[0].target == "seeded-unwritten"


def test_restart_suppresses_read_never_written():
    """A restart scatters the population over every register, so a
    read-only register is legitimate (Figure 1's ``z`` pattern)."""
    main = procedure(
        "Main",
        While(Detect("y"), seq(Move("y", "x"))),
        Restart(),
        while_true(),
    )
    prog = program(["x", "y"], [main])
    assert only(check_program(prog), "PRG009") == []


def test_unreachable_statement_after_return():
    helper = procedure(
        "Helper",
        Return(True),
        Move("x", "y"),  # dead: follows an unconditional return
        returns_value=True,
    )
    main = procedure(
        "Main",
        If(Detect("x"), then_body=seq(Move("x", "y"))),
        while_true(),
    )
    # Helper is also never called, so PRG011 fires alongside PRG008.
    prog = program(["x", "y"], [main, helper])
    diags = check_program(prog, name="dead-code")
    dead = only(diags, "PRG008")
    assert len(dead) == 1 and dead[0].location == "Helper"
    assert {d.location for d in only(diags, "PRG011")} == {"Helper"}


def test_unreachable_after_while_true():
    main = procedure(
        "Main",
        while_true(Move("x", "y")),
        Move("y", "x"),  # dead: while true never falls through
    )
    prog = program(["x", "y"], [main])
    assert len(only(check_program(prog), "PRG008")) == 1


def test_write_only_register_is_info_not_warning():
    main = procedure("Main", while_true(Move("x", "y")))
    prog = program(["x", "y"], [main])
    diags = check_program(prog)
    sinks = only(diags, "PRG010")
    assert {d.location for d in sinks} == {"y"}
    assert all(d.severity == "info" for d in sinks)


# ----------------------------------------------------------------------
# Swap components and the known-good examples
# ----------------------------------------------------------------------
def test_swap_component_reported_and_size_agrees():
    main = procedure(
        "Main",
        while_true(Swap("a", "b"), Swap("b", "c"), Move("a", "d")),
    )
    prog = program(["a", "b", "c", "d"], [main])
    diags = check_program(prog)
    # One component {a, b, c} contributing 3·2 = 6; no PRG012 error.
    infos = [d for d in only(diags, "PRG012") if d.severity == "info"]
    assert len(infos) == 1
    assert infos[0].data["component"] == ["a", "b", "c"]
    assert not [d for d in only(diags, "PRG012") if d.severity == "error"]


def test_known_good_programs_are_error_free(figure1, thr2_program):
    from repro.lipton import build_threshold_program

    for prog, name in (
        (figure1, "figure1"),
        (thr2_program, "thr2"),
        (build_threshold_program(1), "lipton1"),
    ):
        errors = [d for d in check_program(prog, name=name) if d.severity == "error"]
        assert errors == [], f"{name}: {errors}"


def test_diagnostics_carry_target_name(figure1):
    diags = check_program(figure1, name="figure1")
    assert diags, "figure1 has at least its swap-component info finding"
    assert all(d.target == "figure1" for d in diags)
