"""Tests for the Table 1 / Theorem 1 state-complexity accounting."""

import pytest

from repro.analysis import table1_row, table1_rows, theorem1_data
from repro.lipton import threshold


class TestTable1:
    def test_row_fields(self):
        row = table1_row(2)
        assert row.k == threshold(2) == 10
        assert row.unary_states == 11
        assert row.binary_states >= 4
        assert row.this_paper_states > row.binary_states  # constants differ
        assert row.leader_states < row.this_paper_states

    def test_unary_capped(self):
        row = table1_row(5, unary_cap=1000)
        assert row.unary_states is None  # k = 918070 > cap

    def test_rows_sorted_by_n(self):
        rows = table1_rows(4)
        assert [r.n for r in rows] == [1, 2, 3, 4]

    def test_asymptotic_crossover(self):
        """By n = 4 the classic construction is far bigger than ours while
        ours barely grew: the Table 1 ordering."""
        rows = table1_rows(5)
        last = rows[-1]
        assert last.unary_states > 100 * last.binary_states
        growth_ours = rows[-1].this_paper_states / rows[0].this_paper_states
        growth_unary = rows[-1].unary_states / rows[0].unary_states
        assert growth_unary > 10 * growth_ours

    def test_formula_size_is_bits(self):
        row = table1_row(3)
        assert row.formula_size == threshold(3).bit_length()


class TestTheorem1Data:
    def test_bound_met_everywhere(self):
        for datum in theorem1_data(6):
            assert datum.bound_met
            assert datum.k >= datum.double_exponential_bound

    def test_states_linear(self):
        data = theorem1_data(6)
        counts = [d.states for d in data]
        increments = [b - a for a, b in zip(counts, counts[1:])]
        assert len(set(increments[2:])) == 1  # exactly affine in n

    def test_states_match_pipeline(self):
        from repro.conversion import compile_threshold_protocol

        datum = theorem1_data(1)[0]
        assert datum.states == compile_threshold_protocol(1).state_count
