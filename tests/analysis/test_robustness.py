"""Tests for the robustness experiments (Theorem 2 / Lemma 15 / X2)."""

import random

import pytest

from repro.analysis import (
    ablation_error_checks,
    election_recovery_trial,
    program_selfstab_trial,
    protocol_selfstab_trial,
    random_noise_configuration,
)
from repro.lipton import threshold


class TestProgramSelfStab:
    @pytest.mark.parametrize("total", [1, 9, 10, 14])
    def test_n2_adversarial_initialisation(self, total):
        outcome = program_selfstab_trial(2, total, seed=17 * total + 1)
        assert outcome.correct, (total, outcome.got)

    def test_n1_sweep(self):
        for total in range(1, 6):
            outcome = program_selfstab_trial(1, total, seed=total)
            assert outcome.correct

    def test_expected_field(self):
        outcome = program_selfstab_trial(1, 5, seed=0)
        assert outcome.expected is (5 >= threshold(1))


class TestAblation:
    def test_bare_counter_fails_sometimes(self):
        summary = ablation_error_checks(
            1, totals=[1, 2, 4], trials_per_total=3, seed=5
        )
        assert summary.with_checks_correct == summary.with_checks_total
        assert summary.without_checks_correct < summary.without_checks_total


class TestNoiseConfigurations:
    def test_noise_plus_initial_counts(self, thr2_pipeline):
        conv = thr2_pipeline.conversion
        rng = random.Random(0)
        config = random_noise_configuration(conv, 5, conv.shift + 2, rng)
        assert config.size == 5 + conv.shift + 2
        assert config[conv.initial_state] >= conv.shift + 2


class TestElectionRecovery:
    def test_recovers_without_noise(self, thr2_pipeline):
        steps = election_recovery_trial(
            thr2_pipeline.conversion, noise_agents=0, seed=0
        )
        assert steps is not None

    @pytest.mark.parametrize("noise", [3, 10])
    def test_recovers_with_noise(self, thr2_pipeline, noise):
        steps = election_recovery_trial(
            thr2_pipeline.conversion,
            noise_agents=noise,
            initial_agents=thr2_pipeline.shift + 1,
            seed=noise,
        )
        assert steps is not None

    def test_requires_enough_initial_agents(self, thr2_pipeline):
        with pytest.raises(ValueError):
            election_recovery_trial(
                thr2_pipeline.conversion,
                noise_agents=2,
                initial_agents=1,
                seed=0,
            )


class TestProtocolSelfStab:
    def test_definition7_end_to_end(self, thr2_pipeline):
        """Noise agents + enough initial agents: stabilises to phi'(|C|)."""
        shift = thr2_pipeline.shift

        def phi(total):
            return total >= shift and (total - shift) >= 2

        outcome = protocol_selfstab_trial(
            thr2_pipeline,
            phi,
            noise_agents=4,
            initial_agents=shift + 3,
            seed=2,
            max_interactions=3_000_000,
            convergence_window=80_000,
        )
        assert outcome.correct, (outcome.total, outcome.got, outcome.expected)
