"""Restart machinery under degenerate inputs: zero totals, single
registers, restart storms, and the shape of non-convergence errors."""

import random

import pytest

from repro.core import NonConvergenceError
from repro.programs import (
    AdversarialRestart,
    CanonicalRestart,
    MixtureRestart,
    Move,
    Restart,
    SetOutput,
    UniformRestart,
    decide_program,
    procedure,
    program,
    run_program,
    while_true,
)


def looped(*body):
    return procedure("Main", *body, while_true())


class TestDegenerateTotals:
    @pytest.mark.parametrize(
        "policy",
        [
            UniformRestart(),
            CanonicalRestart(lambda total: {"x": total}),
            MixtureRestart(
                UniformRestart(), CanonicalRestart(lambda t: {"x": t}), 0.5
            ),
        ],
        ids=["uniform", "canonical", "mixture"],
    )
    def test_restart_with_total_zero(self, policy):
        # An empty population restarts to the all-zero configuration —
        # there is exactly one composition of 0 — and must not crash.
        prog = program(["x", "y"], [looped(Restart())])
        result = run_program(
            prog, {"x": 0, "y": 0}, seed=1, restart_policy=policy, max_steps=200
        )
        assert result.registers == {"x": 0, "y": 0}
        assert result.restarts >= 1

    def test_restart_single_register(self):
        # One register admits a single composition: the total itself.
        prog = program(["x"], [looped(Restart())])
        result = run_program(prog, {"x": 7}, seed=0, max_steps=200)
        assert result.registers == {"x": 7}
        assert result.restarts >= 1

    def test_sample_policies_preserve_total(self):
        rng = random.Random(0)
        for policy in (UniformRestart(), CanonicalRestart(lambda t: {"a": t})):
            for total in (0, 1, 13):
                config = policy.sample(total, ("a", "b"), rng)
                assert sum(config.values()) == total
                assert all(v >= 0 for v in config.values())

    def test_decide_on_empty_population(self):
        # total 0: Move hangs immediately (source always empty), the hung
        # run still yields its current output flag as the verdict.
        prog = program(["x", "y"], [looped(SetOutput(False), Move("x", "y"))])
        assert decide_program(prog, {"x": 0}, seed=0, max_steps=10_000) is False


class TestRestartStorm:
    def _storm(self):
        # Main restarts on every iteration: the run is all restarts, so
        # it can never be quiet and the interpreter must neither wedge
        # nor let register totals drift.
        return program(["x", "y"], [procedure("Main", while_true(Restart()))])

    def test_storm_preserves_total_and_counts_restarts(self):
        result = run_program(self._storm(), {"x": 5}, seed=3, max_steps=5_000)
        assert sum(result.registers.values()) == 5
        assert result.restarts > 100
        assert result.restart_steps == sorted(result.restart_steps)

    def test_storm_never_goes_quiet(self):
        with pytest.raises(NonConvergenceError, match="quiet period"):
            decide_program(
                self._storm(), {"x": 5}, seed=3,
                quiet_window=1_000, max_steps=20_000,
            )

    def test_nonconvergence_message_carries_restart_count(self):
        with pytest.raises(NonConvergenceError, match=r"restarts: \d+"):
            decide_program(
                self._storm(), {"x": 5}, seed=3,
                quiet_window=1_000, max_steps=20_000,
            )

    def test_adversarial_restart_cycles_configurations(self):
        policy = AdversarialRestart([{"x": 5, "y": 0}, {"x": 0, "y": 5}])
        result = run_program(
            self._storm(), {"x": 5}, seed=0,
            restart_policy=policy, max_steps=3_000,
        )
        assert sum(result.registers.values()) == 5
        assert result.restarts > 10

    def test_non_strict_storm_returns_best_guess(self):
        got = decide_program(
            self._storm(), {"x": 5}, seed=3,
            quiet_window=1_000, max_steps=20_000, strict=False,
        )
        assert got in (True, False)


class TestNonConvergenceMessages:
    def test_protocol_decide_message_names_protocol_and_size(self):
        from repro.baselines import binary_threshold_protocol
        from repro.core import Multiset, decide

        with pytest.raises(
            NonConvergenceError, match=r"binary-threshold\(k=5\).*\|C\|=9"
        ):
            decide(
                binary_threshold_protocol(5),
                Multiset({"p0": 9}),
                seed=0,
                attempts=2,
                max_interactions=10,
                convergence_window=1_000_000,
            )

    def test_program_decide_message_names_budget(self):
        prog = program(["x", "y"], [procedure("Main", while_true(Restart()))])
        with pytest.raises(NonConvergenceError, match="20000 steps"):
            decide_program(
                prog, {"x": 5}, seed=3, quiet_window=1_000, max_steps=20_000
            )
