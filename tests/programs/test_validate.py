"""Tests for static program validation (Section 4 rules)."""

import pytest

from repro.core import InvalidProgramError
from repro.programs import (
    CallExpr,
    CallStmt,
    Detect,
    If,
    Move,
    Return,
    SetOutput,
    Swap,
    While,
    call_graph,
    procedure,
    program,
    seq,
    topological_order,
    validate_program,
)


class TestCallGraph:
    def test_graph_edges(self):
        a = procedure("Main", CallStmt("B"))
        b = procedure("B", CallStmt("C"))
        c = procedure("C", SetOutput(True))
        prog = program(["x"], [a, b, c])
        graph = call_graph(prog)
        assert graph["Main"] == {"B"}
        assert graph["B"] == {"C"}
        assert graph["C"] == set()

    def test_topological_order_callees_first(self):
        a = procedure("Main", CallStmt("B"))
        b = procedure("B", CallStmt("C"))
        c = procedure("C", SetOutput(True))
        order = topological_order(program(["x"], [a, b, c]))
        assert order.index("C") < order.index("B") < order.index("Main")


class TestRejections:
    def test_recursion_rejected(self):
        """No recursion: the model requires acyclic calls (Section 4)."""
        loop = procedure("Main", CallStmt("Main"))
        with pytest.raises(InvalidProgramError, match="cyclic"):
            program(["x"], [loop])

    def test_mutual_recursion_rejected(self):
        a = procedure("Main", CallStmt("B"))
        b = procedure("B", CallStmt("Main"))
        with pytest.raises(InvalidProgramError, match="cyclic"):
            program(["x"], [a, b])

    def test_undefined_callee_rejected(self):
        with pytest.raises(InvalidProgramError, match="undefined"):
            program(["x"], [procedure("Main", CallStmt("Ghost"))])

    def test_unknown_register_in_move(self):
        with pytest.raises(InvalidProgramError, match="unknown register"):
            program(["x"], [procedure("Main", Move("x", "nope"))])

    def test_unknown_register_in_swap(self):
        with pytest.raises(InvalidProgramError, match="unknown register"):
            program(["x"], [procedure("Main", Swap("x", "nope"))])

    def test_unknown_register_in_detect(self):
        with pytest.raises(InvalidProgramError, match="unknown register"):
            program(
                ["x"],
                [procedure("Main", If(Detect("nope"), then_body=seq()))],
            )

    def test_self_move_rejected(self):
        with pytest.raises(InvalidProgramError, match="identical"):
            program(["x"], [procedure("Main", Move("x", "x"))])

    def test_value_return_needs_declaration(self):
        bad = procedure("Main2", Return(True))  # not returns_value
        with pytest.raises(InvalidProgramError, match="not declared"):
            program(
                ["x"],
                [procedure("Main", CallStmt("Main2")), bad],
            )

    def test_condition_call_must_return_value(self):
        silent = procedure("P", SetOutput(True))
        with pytest.raises(InvalidProgramError, match="returns no value"):
            program(
                ["x"],
                [
                    procedure("Main", While(CallExpr("P"), seq())),
                    silent,
                ],
            )

    def test_main_must_not_return_value(self):
        bad_main = procedure("Main", Return(True), returns_value=True)
        with pytest.raises(InvalidProgramError, match="Main"):
            program(["x"], [bad_main])


class TestAcceptance:
    def test_figure1_validates(self, figure1):
        validate_program(figure1)

    def test_lipton_validates(self, lipton2_program):
        validate_program(lipton2_program)

    def test_diamond_calls_allowed(self):
        """Acyclic but not a tree: A -> B, A -> C, B -> D, C -> D."""
        d = procedure("D", SetOutput(True))
        b = procedure("B", CallStmt("D"))
        c = procedure("C", CallStmt("D"))
        a = procedure("Main", CallStmt("B"), CallStmt("C"))
        validate_program(program(["x"], [a, b, c, d]))
