"""Tests for the paper-style pseudocode renderer."""

from repro.lipton import build_threshold_program
from repro.programs import figure1_program, simple_threshold_program
from repro.programs.pretty import render_condition, render_procedure, render_program
from repro.programs.ast import And, CallExpr, Const, Detect, Not, Or


class TestConditions:
    def test_atoms(self):
        assert render_condition(Detect("x")) == "detect x > 0"
        assert render_condition(Const(True)) == "true"
        assert render_condition(CallExpr("P")) == "P()"

    def test_compound(self):
        cond = Or(Not(Detect("x")), And(CallExpr("P"), Const(False)))
        text = render_condition(cond)
        assert text == "(not detect x > 0 or (P() and false))"


class TestProgramRendering:
    def test_figure1_golden_shape(self, figure1):
        text = render_program(figure1)
        # The listing contains exactly the paper's procedures...
        for header in (
            "procedure Main:",
            "procedure Clean:",
            "procedure Test(4):",
            "procedure Test(7):",
        ):
            assert header in text
        # ... and the figure's characteristic lines.
        assert "OF := true" in text
        assert "swap x, y" in text
        assert "restart" in text
        assert text.startswith("registers: x, y, z")

    def test_main_rendered_first(self, figure1):
        text = render_program(figure1)
        assert text.index("procedure Main:") < text.index("procedure Clean:")

    def test_simple_threshold_roundtrippable_shape(self):
        text = render_program(simple_threshold_program(2))
        assert text.count("x -> y") == 2  # Test(2) expands the for-loop

    def test_lipton_construction_renders(self):
        text = render_program(build_threshold_program(2))
        assert "procedure Large(xb2):" in text
        assert "procedure IncrPair(x1,y1):" in text
        assert "procedure AssertProper(2):" in text
        # Zero's loop structure from the paper.
        assert "while true:" in text

    def test_value_returning_marked(self):
        text = render_procedure(
            build_threshold_program(1).procedures["Large(xb1)"]
        )
        assert "# returns bool" in text

    def test_empty_body_renders_pass(self):
        from repro.programs import procedure, while_true

        text = render_procedure(procedure("Main", while_true()))
        assert "pass" in text
