"""Tests for restart policies."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.programs import (
    AdversarialRestart,
    CanonicalRestart,
    MixtureRestart,
    UniformRestart,
    uniform_composition,
)

REGS = ("a", "b", "c")


class TestUniformComposition:
    def test_preserves_total(self):
        rng = random.Random(0)
        for total in (0, 1, 7, 100):
            config = uniform_composition(total, REGS, rng)
            assert sum(config.values()) == total
            assert set(config) == set(REGS)

    def test_single_register(self):
        assert uniform_composition(5, ("x",), random.Random(0)) == {"x": 5}

    def test_zero_registers_zero_total(self):
        assert uniform_composition(0, (), random.Random(0)) == {}

    def test_zero_registers_nonzero_total_rejected(self):
        with pytest.raises(ValueError):
            uniform_composition(3, (), random.Random(0))

    def test_bignum_total(self):
        total = 2 ** (2**6)
        config = uniform_composition(total, REGS, random.Random(1))
        assert sum(config.values()) == total

    def test_roughly_uniform_over_compositions(self):
        """total=2 over 2 registers: compositions (0,2),(1,1),(2,0) each
        with probability 1/3."""
        rng = random.Random(42)
        counts = {}
        trials = 3000
        for _ in range(trials):
            c = uniform_composition(2, ("a", "b"), rng)
            counts[(c["a"], c["b"])] = counts.get((c["a"], c["b"]), 0) + 1
        for key in ((0, 2), (1, 1), (2, 0)):
            assert abs(counts[key] / trials - 1 / 3) < 0.05


class TestCanonical:
    def test_jumps_to_chosen_configuration(self):
        policy = CanonicalRestart(lambda total: {"a": total})
        assert policy.sample(5, REGS, random.Random(0)) == {"a": 5, "b": 0, "c": 0}

    def test_total_mismatch_rejected(self):
        policy = CanonicalRestart(lambda total: {"a": total + 1})
        with pytest.raises(ValueError):
            policy.sample(5, REGS, random.Random(0))

    def test_unknown_register_rejected(self):
        policy = CanonicalRestart(lambda total: {"zz": total})
        with pytest.raises(ValueError):
            policy.sample(5, REGS, random.Random(0))


class TestMixture:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            MixtureRestart(UniformRestart(), UniformRestart(), 1.5)

    def test_extreme_probabilities(self):
        canon = CanonicalRestart(lambda total: {"a": total})
        always_first = MixtureRestart(canon, UniformRestart(), 1.0)
        rng = random.Random(0)
        for _ in range(10):
            assert always_first.sample(4, REGS, rng)["a"] == 4

    def test_mixes(self):
        canon = CanonicalRestart(lambda total: {"a": total})
        mix = MixtureRestart(canon, UniformRestart(), 0.5)
        rng = random.Random(3)
        outcomes = {tuple(sorted(mix.sample(6, REGS, rng).items())) for _ in range(200)}
        assert len(outcomes) > 1  # not always canonical


class TestAdversarial:
    def test_cycles_through_list(self):
        policy = AdversarialRestart([{"a": 3}, {"b": 3}])
        rng = random.Random(0)
        first = policy.sample(3, REGS, rng)
        second = policy.sample(3, REGS, rng)
        third = policy.sample(3, REGS, rng)
        assert first["a"] == 3 and second["b"] == 3 and third == first

    def test_wrong_total_rejected(self):
        policy = AdversarialRestart([{"a": 2}])
        with pytest.raises(ValueError):
            policy.sample(5, REGS, random.Random(0))

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            AdversarialRestart([])


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=6))
def test_uniform_composition_total_invariant(total, k):
    regs = tuple(f"r{i}" for i in range(k))
    config = uniform_composition(total, regs, random.Random(total))
    assert sum(config.values()) == total
    assert all(v >= 0 for v in config.values())
