"""Tests for the population-program AST and traversal helpers."""

import pytest

from repro.core import InvalidProgramError
from repro.programs import (
    And,
    CallExpr,
    CallStmt,
    Const,
    Detect,
    If,
    Move,
    Not,
    Or,
    PopulationProgram,
    Procedure,
    Restart,
    Return,
    SetOutput,
    Swap,
    While,
    procedure,
    program,
    seq,
)
from repro.programs.ast import (
    called_procedures,
    condition_atoms,
    iter_conditions,
    iter_statements,
)


def sample_procedure():
    return procedure(
        "P",
        Move("x", "y"),
        If(
            Detect("x"),
            then_body=seq(Swap("x", "y"), CallStmt("Q")),
            else_body=seq(Restart()),
        ),
        While(And(Detect("y"), Not(CallExpr("R"))), seq(SetOutput(True))),
        Return(None),
    )


class TestTraversal:
    def test_iter_statements_includes_nested(self):
        stmts = list(iter_statements(sample_procedure().body))
        kinds = [type(s).__name__ for s in stmts]
        assert "Swap" in kinds and "Restart" in kinds and "SetOutput" in kinds
        assert kinds.count("If") == 1 and kinds.count("While") == 1

    def test_iter_conditions(self):
        conds = list(iter_conditions(sample_procedure().body))
        assert len(conds) == 2

    def test_condition_atoms_flatten(self):
        cond = Or(And(Detect("a"), Const(True)), Not(CallExpr("F")))
        atoms = list(condition_atoms(cond))
        assert [type(a).__name__ for a in atoms] == ["Detect", "Const", "CallExpr"]

    def test_called_procedures(self):
        calls = list(called_procedures(sample_procedure()))
        assert sorted(calls) == ["Q", "R"]


class TestProgramStructure:
    def test_duplicate_registers_rejected(self):
        with pytest.raises(InvalidProgramError):
            PopulationProgram(
                registers=("x", "x"),
                procedures={"Main": Procedure("Main", ())},
            )

    def test_missing_main_rejected(self):
        with pytest.raises(InvalidProgramError):
            PopulationProgram(registers=("x",), procedures={})

    def test_procedure_lookup(self):
        prog = program(["x"], [procedure("Main", SetOutput(False))])
        assert prog.procedure("Main").name == "Main"
        with pytest.raises(InvalidProgramError):
            prog.procedure("Nope")


class TestDisplay:
    @pytest.mark.parametrize(
        "node,text",
        [
            (Move("x", "y"), "x -> y"),
            (Swap("a", "b"), "swap a, b"),
            (SetOutput(True), "OF := true"),
            (Restart(), "restart"),
            (Return(False), "return false"),
            (Return(None), "return"),
            (CallStmt("P"), "P()"),
            (Detect("x"), "detect x > 0"),
            (Const(True), "true"),
        ],
    )
    def test_str(self, node, text):
        assert str(node) == text

    def test_compound_condition_str(self):
        cond = Or(Not(Detect("x")), CallExpr("P"))
        assert "detect x > 0" in str(cond) and "P()" in str(cond)
