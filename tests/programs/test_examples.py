"""Tests for the example programs (Figure 1 and variants)."""

import pytest

from repro.core import Interval, Threshold
from repro.programs import (
    decide_program,
    figure1_predicate,
    figure1_program,
    interval_program,
    program_size,
    simple_threshold_program,
    simple_threshold_predicate,
    validate_program,
)


class TestFigure1Structure:
    def test_registers(self, figure1):
        assert set(figure1.registers) == {"x", "y", "z"}

    def test_procedures_match_paper(self, figure1):
        """Main, Clean, Test(4), Test(7) — exactly the four parameterised
        procedures of Figure 1."""
        assert set(figure1.procedures) == {"Main", "Clean", "Test(4)", "Test(7)"}

    def test_swap_size_is_two(self, figure1):
        """The paper computes the figure's swap-size as exactly 2."""
        assert program_size(figure1).swap_size == 2

    def test_validates(self, figure1):
        validate_program(figure1)

    def test_predicate(self):
        assert figure1_predicate() == Interval(4, 7)


class TestFigure1Decisions:
    @pytest.mark.parametrize("m", range(1, 11))
    def test_pure_x_inputs(self, figure1, m):
        got = decide_program(
            figure1, {"x": m}, seed=40 + m, quiet_window=20_000, max_steps=3_000_000
        )
        assert got == (4 <= m < 7)

    @pytest.mark.parametrize(
        "initial",
        [
            {"x": 2, "y": 3, "z": 1},
            {"x": 1, "y": 1, "z": 3},
            {"x": 0, "y": 5, "z": 0},
            {"x": 0, "y": 0, "z": 6},
        ],
    )
    def test_noise_register_inputs(self, figure1, initial):
        """The decision depends on the total across all registers; junk in
        y and z is cleaned via restarts."""
        m = sum(initial.values())
        got = decide_program(
            figure1, initial, seed=7, quiet_window=20_000, max_steps=5_000_000
        )
        assert got == (4 <= m < 7)


class TestIntervalVariants:
    def test_custom_interval(self):
        prog = interval_program(2, 5)
        for m in range(1, 8):
            got = decide_program(prog, {"x": m}, seed=m, quiet_window=20_000)
            assert got == (2 <= m < 5), m

    def test_without_swap(self):
        prog = interval_program(2, 4, include_swap=False)
        assert program_size(prog).swap_size == 0
        got = decide_program(prog, {"x": 3}, seed=0, quiet_window=20_000)
        assert got is True

    def test_without_noise_register(self):
        prog = interval_program(2, 4, include_noise_register=False)
        assert set(prog.registers) == {"x", "y"}
        got = decide_program(prog, {"x": 5}, seed=0, quiet_window=20_000)
        assert got is False

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            interval_program(5, 5)
        with pytest.raises(ValueError):
            interval_program(0, 3)


class TestSimpleThreshold:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_boundary(self, k):
        prog = simple_threshold_program(k)
        for m in range(1, k + 3):
            got = decide_program(prog, {"x": m}, seed=m, quiet_window=20_000)
            assert got == (m >= k), (k, m)

    def test_predicate(self):
        assert simple_threshold_predicate(3) == Threshold(3)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            simple_threshold_program(0)

    def test_noise_variant_has_restart(self):
        prog = simple_threshold_program(2, include_noise_register=True)
        got = decide_program(prog, {"z": 3}, seed=1, quiet_window=20_000)
        assert got is True  # total 3 >= 2, counted after restarts
