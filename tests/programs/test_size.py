"""Tests for the size metric |Q| + L + S (Section 4)."""

from repro.programs import (
    CallExpr,
    CallStmt,
    Const,
    Detect,
    If,
    Move,
    Not,
    Restart,
    Return,
    SetOutput,
    Swap,
    While,
    instruction_count,
    procedure,
    program,
    program_size,
    seq,
    swap_components,
    swap_size,
    while_true,
)


def make(registers, *procs):
    return program(registers, procs)


class TestInstructionCount:
    def test_primitives_counted(self):
        prog = make(
            ["x", "y"],
            procedure(
                "Main",
                Move("x", "y"),
                Swap("x", "y"),
                SetOutput(True),
                Restart(),
            ),
        )
        assert instruction_count(prog) == 4

    def test_condition_atoms_counted(self):
        prog = make(
            ["x", "y"],
            procedure(
                "Main",
                While(Detect("x"), seq(Move("x", "y"))),
            ),
        )
        # 1 detect (condition) + 1 move
        assert instruction_count(prog) == 2

    def test_const_conditions_free(self):
        prog = make(["x"], procedure("Main", while_true(SetOutput(False))))
        assert instruction_count(prog) == 1  # only the SetOutput

    def test_calls_counted_on_both_sides(self):
        helper = procedure("P", Return(True), returns_value=True)
        prog = make(
            ["x"],
            procedure(
                "Main",
                If(CallExpr("P"), then_body=seq(CallStmt("P"))),
            ),
            helper,
        )
        # CallExpr + CallStmt + Return
        assert instruction_count(prog) == 3


class TestSwapSize:
    def test_paper_example_single_pair(self):
        """Figure 1's program: swap x, y only -> swap-size 2."""
        prog = make(
            ["x", "y", "z"], procedure("Main", Swap("x", "y"))
        )
        assert swap_size(prog) == 2

    def test_paper_example_transitive(self):
        """Adding swap y, z makes (x, z) transitively swappable -> 6."""
        prog = make(
            ["x", "y", "z"],
            procedure("Main", Swap("x", "y"), Swap("y", "z")),
        )
        assert swap_size(prog) == 6

    def test_disjoint_components_add(self):
        prog = make(
            ["a", "b", "c", "d"],
            procedure("Main", Swap("a", "b"), Swap("c", "d")),
        )
        assert swap_size(prog) == 4

    def test_no_swaps(self):
        prog = make(["x", "y"], procedure("Main", Move("x", "y")))
        assert swap_size(prog) == 0

    def test_components_reported(self):
        prog = make(
            ["a", "b", "c", "d"],
            procedure("Main", Swap("a", "b"), Swap("b", "c")),
        )
        comps = swap_components(prog)
        assert tuple(sorted(("a", "b", "c"))) in [tuple(m) for m in comps.values()]


class TestTotal:
    def test_decomposition_sums(self):
        prog = make(
            ["x", "y"],
            procedure("Main", Move("x", "y"), Swap("x", "y")),
        )
        size = program_size(prog)
        assert size.total == size.registers + size.instructions + size.swap_size
        assert size.registers == 2
        assert size.instructions == 2
        assert size.swap_size == 2
