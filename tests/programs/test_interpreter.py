"""Tests for the randomized program interpreter."""

import pytest

from repro.core import InvalidProgramError, NonConvergenceError
from repro.programs import (
    AdversarialRestart,
    CallExpr,
    CallStmt,
    Const,
    Detect,
    If,
    Move,
    Not,
    ProgramInterpreter,
    Restart,
    Return,
    SetOutput,
    Swap,
    While,
    call_procedure,
    decide_program,
    procedure,
    program,
    run_program,
    seq,
    while_true,
)


def looped(*body):
    """A Main that executes body once and then idles forever."""
    return procedure("Main", *body, while_true())


class TestPrimitives:
    def test_move(self):
        prog = program(["x", "y"], [looped(Move("x", "y"))])
        result = run_program(prog, {"x": 2}, seed=0, max_steps=100)
        assert result.registers == {"x": 1, "y": 1}

    def test_move_from_empty_hangs(self):
        prog = program(["x", "y"], [looped(Move("x", "y"))])
        result = run_program(prog, {"x": 0}, seed=0, max_steps=100)
        assert result.hung

    def test_swap(self):
        prog = program(["x", "y"], [looped(Swap("x", "y"))])
        result = run_program(prog, {"x": 3, "y": 1}, seed=0, max_steps=100)
        assert result.registers == {"x": 1, "y": 3}

    def test_set_output_traced(self):
        prog = program(["x"], [looped(SetOutput(True), SetOutput(False))])
        result = run_program(prog, {"x": 1}, seed=0, max_steps=100)
        assert [v for _, v in result.of_trace] == [True, False]
        assert result.output is False

    def test_detect_false_on_empty(self):
        prog = program(
            ["x", "y"],
            [looped(If(Detect("x"), then_body=seq(SetOutput(True))))],
        )
        result = run_program(prog, {"x": 0}, seed=0, max_steps=100)
        assert result.output is False

    def test_detect_eventually_true_on_nonempty(self):
        prog = program(
            ["x", "y"],
            [
                procedure(
                    "Main",
                    While(Not(Detect("x")), seq()),
                    SetOutput(True),
                    while_true(),
                )
            ],
        )
        result = run_program(prog, {"x": 1}, seed=0, max_steps=10_000)
        assert result.output is True

    def test_detect_may_spuriously_fail(self):
        """detect can answer false on nonempty registers: with p = 0.5 the
        first answer is false for some seed."""
        prog = program(
            ["x"],
            [looped(If(Detect("x"), then_body=seq(SetOutput(True))))],
        )
        interp = ProgramInterpreter(prog, detect_true_probability=0.5)
        outcomes = {
            interp.run({"x": 1}, seed=s, max_steps=50).output for s in range(30)
        }
        assert outcomes == {True, False}


class TestControlFlow:
    def test_if_else(self):
        prog = program(
            ["x"],
            [
                looped(
                    If(
                        Const(False),
                        then_body=seq(SetOutput(True)),
                        else_body=seq(SetOutput(False)),
                    )
                )
            ],
        )
        assert run_program(prog, {"x": 1}, seed=0, max_steps=50).output is False

    def test_while_loop_drains_register(self):
        prog = program(
            ["x", "y"],
            [
                procedure(
                    "Main",
                    While(Detect("x"), seq(Move("x", "y"))),
                    while_true(),
                )
            ],
        )
        # The loop may exit early (spurious detect-false) but with high
        # detect probability and many steps it should drain several units.
        result = run_program(prog, {"x": 5}, seed=1, max_steps=10_000)
        assert result.registers["y"] >= 1

    def test_procedure_call_and_return_value(self):
        helper = procedure("IsEmpty",
                           If(Detect("x"), then_body=seq(Return(False))),
                           Return(True),
                           returns_value=True)
        main = procedure(
            "Main",
            If(CallExpr("IsEmpty"), then_body=seq(SetOutput(True))),
            while_true(),
        )
        prog = program(["x"], [main, helper])
        assert run_program(prog, {"x": 0}, seed=0, max_steps=100).output is True

    def test_nested_calls(self):
        c = procedure("C", Return(True), returns_value=True)
        b = procedure("B", If(CallExpr("C"), then_body=seq(Return(True))),
                      Return(False), returns_value=True)
        main = procedure(
            "Main",
            If(CallExpr("B"), then_body=seq(SetOutput(True))),
            while_true(),
        )
        prog = program(["x"], [main, b, c])
        assert run_program(prog, {"x": 1}, seed=0, max_steps=200).output is True

    def test_main_returning_ends_run(self):
        prog = program(["x"], [procedure("Main", SetOutput(True))])
        result = run_program(prog, {"x": 1}, seed=0, max_steps=100)
        assert result.main_returned


class TestRestart:
    def test_restart_resamples_registers(self):
        prog = program(
            ["x", "y"],
            [procedure("Main", Restart())],
        )
        policy = AdversarialRestart([{"y": 3}])

        # After one restart Main runs again and restarts again... budget out.
        result = run_program(
            prog, {"x": 3}, seed=0, restart_policy=policy, max_steps=50
        )
        assert result.restarts >= 1
        assert result.registers["y"] == 3 or result.restarts > 1

    def test_restart_preserves_total(self):
        prog = program(["x", "y"], [procedure("Main", Restart())])
        result = run_program(prog, {"x": 7}, seed=0, max_steps=200)
        assert sum(result.registers.values()) == 7

    def test_restart_steps_recorded(self):
        prog = program(["x"], [procedure("Main", Restart())])
        result = run_program(prog, {"x": 1}, seed=0, max_steps=50)
        assert len(result.restart_steps) == result.restarts >= 1


class TestValidationInRun:
    def test_unknown_register_rejected(self):
        prog = program(["x"], [looped(SetOutput(True))])
        with pytest.raises(InvalidProgramError):
            run_program(prog, {"zz": 1}, seed=0)

    def test_negative_register_rejected(self):
        prog = program(["x"], [looped(SetOutput(True))])
        with pytest.raises(InvalidProgramError):
            run_program(prog, {"x": -1}, seed=0)

    def test_bad_detect_probability(self):
        prog = program(["x"], [looped(SetOutput(True))])
        with pytest.raises(ValueError):
            ProgramInterpreter(prog, detect_true_probability=0.0)


class TestDecideProgram:
    def test_quiet_window_returns_output(self):
        prog = program(["x"], [looped(SetOutput(True))])
        assert decide_program(prog, {"x": 1}, seed=0, quiet_window=100) is True

    def test_hang_counts_as_stabilised(self):
        prog = program(
            ["x", "y"],
            [procedure("Main", SetOutput(True), Move("x", "y"))],
        )
        assert decide_program(prog, {"x": 0}, seed=0, quiet_window=10**6,
                              max_steps=1000) is True

    def test_strict_nonconvergence_raises(self):
        # Restart storm: never quiet.
        prog = program(["x"], [procedure("Main", Restart())])
        with pytest.raises(NonConvergenceError):
            decide_program(prog, {"x": 1}, seed=0, quiet_window=10**6,
                           max_steps=2_000)

    def test_nonstrict_returns_best_guess(self):
        prog = program(["x"], [procedure("Main", SetOutput(True), Restart())])
        value = decide_program(
            prog, {"x": 1}, seed=0, quiet_window=10**6, max_steps=2_000,
            strict=False,
        )
        assert value in (True, False)


class TestCallProcedure:
    def test_returns_value_and_registers(self):
        helper = procedure(
            "Drain",
            While(Detect("x"), seq(Move("x", "y"))),
            Return(True),
            returns_value=True,
        )
        prog = program(["x", "y"], [looped(SetOutput(False)), helper])
        outcome = call_procedure(prog, "Drain", {"x": 3}, seed=0)
        assert outcome.returned
        assert outcome.value is True
        assert outcome.registers["x"] + outcome.registers["y"] == 3

    def test_observes_restart(self):
        helper = procedure("Boom", Restart())
        prog = program(["x"], [looped(SetOutput(False)), helper])
        outcome = call_procedure(prog, "Boom", {"x": 1}, seed=0)
        assert outcome.restarted and not outcome.returned

    def test_observes_hang(self):
        helper = procedure("Stuck", Move("x", "y"))
        prog = program(["x", "y"], [looped(SetOutput(False)), helper])
        outcome = call_procedure(prog, "Stuck", {"x": 0}, seed=0)
        assert outcome.hung

    def test_observes_exhaustion(self):
        helper = procedure("Forever", while_true())
        prog = program(["x"], [looped(SetOutput(False)), helper])
        outcome = call_procedure(prog, "Forever", {"x": 1}, seed=0, max_steps=100)
        assert outcome.exhausted
