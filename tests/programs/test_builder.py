"""Tests for the program-building sugar (incl. for-loop macro expansion)."""

import pytest

from repro.programs import (
    Const,
    Move,
    SetOutput,
    While,
    for_loop,
    procedure,
    program,
    seq,
    while_true,
)


class TestSeq:
    def test_flattens_nested(self):
        body = seq(Move("x", "y"), [Move("y", "x"), [SetOutput(True)]])
        assert len(body) == 3
        assert isinstance(body, tuple)

    def test_empty(self):
        assert seq() == ()


class TestForLoop:
    def test_expands_into_copies(self):
        """Section 4: for-loops are macros expanding into their body's
        copies (like Figure 1's Test(i))."""
        body = for_loop(3, lambda j: Move("x", "y"))
        assert len(body) == 3
        assert all(isinstance(s, Move) for s in body)

    def test_index_is_one_based(self):
        indices = []
        for_loop(4, lambda j: indices.append(j) or Move("x", "y"))
        assert indices == [1, 2, 3, 4]

    def test_zero_iterations(self):
        assert for_loop(0, lambda j: Move("x", "y")) == ()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            for_loop(-1, lambda j: Move("x", "y"))

    def test_body_may_be_sequence(self):
        body = for_loop(2, lambda j: [Move("x", "y"), Move("y", "x")])
        assert len(body) == 4


class TestWhileTrue:
    def test_condition_is_const_true(self):
        loop = while_true(Move("x", "y"))
        assert isinstance(loop, While)
        assert loop.condition == Const(True)
        assert len(loop.body) == 1

    def test_empty_body_allowed(self):
        assert while_true().body == ()


class TestProgram:
    def test_duplicate_procedures_rejected(self):
        p = procedure("Main", SetOutput(False))
        with pytest.raises(ValueError):
            program(["x"], [p, p])

    def test_validation_runs_by_default(self):
        from repro.core import InvalidProgramError
        from repro.programs import CallStmt

        bad = procedure("Main", CallStmt("Ghost"))
        with pytest.raises(InvalidProgramError):
            program(["x"], [bad])

    def test_validation_can_be_skipped(self):
        from repro.programs import CallStmt

        bad = procedure("Main", CallStmt("Ghost"))
        prog = program(["x"], [bad], validate=False)
        assert "Main" in prog.procedures
