"""The ``python -m repro trace`` / ``stats`` subcommands."""

import json

import pytest

from repro.__main__ import main
from repro.observability.runners import TARGETS


class TestTraceCommand:
    def test_trace_theorem3_writes_jsonl_and_digest(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(
            (
                "trace",
                "theorem3",
                "--n",
                "2",
                "--max-steps",
                "20000",
                "--out",
                str(out),
            )
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "run digest" in printed
        assert "restarts" in printed
        kinds = {json.loads(line)["kind"] for line in out.read_text().splitlines()}
        assert {"run_start", "run_end", "detect", "restart", "statement"} <= kinds

    def test_trace_no_hot_events(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        main(
            (
                "trace",
                "machine",
                "--max-steps",
                "5000",
                "--no-hot-events",
                "--out",
                str(out),
            )
        )
        kinds = {json.loads(line)["kind"] for line in out.read_text().splitlines()}
        assert "instruction" not in kinds
        assert "run_end" in kinds

    def test_trace_list(self, capsys):
        assert main(("trace", "--list")) == 0
        printed = capsys.readouterr().out
        for target in TARGETS:
            assert target in printed

    def test_trace_writes_spans_and_manifest_sidecars(self, tmp_path):
        out = tmp_path / "run.jsonl"
        code = main(
            (
                "trace",
                "protocol",
                "--total",
                "12",
                "--max-steps",
                "5000",
                "--out",
                str(out),
            )
        )
        assert code == 0
        spans = json.loads((tmp_path / "run.spans.json").read_text())
        assert [c["name"] for c in spans["children"]] == ["simulate"]
        manifest = json.loads((tmp_path / "run.manifest.json").read_text())
        assert manifest["target"] == "protocol"
        assert manifest["protocol_fingerprint"]
        assert manifest["extra"]["total"] == 12


class TestStatsCommand:
    def test_stats_protocol_writes_metrics_json(self, tmp_path, capsys):
        out = tmp_path / "stats.json"
        code = main(
            (
                "stats",
                "protocol",
                "--total",
                "20",
                "--max-steps",
                "5000",
                "--out",
                str(out),
            )
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["target"] == "protocol"
        assert payload["counters"]["interactions"] > 0
        assert "run digest" in capsys.readouterr().out

    def test_stats_pipeline(self, capsys):
        assert main(("stats", "pipeline", "--n", "1")) == 0
        printed = capsys.readouterr().out
        assert "stage.lower.seconds" in printed

    def test_experiment_cli_still_works(self, capsys):
        # The legacy experiment path must be untouched by the new parsing.
        assert main(("figures-lowering",)) == 0
        assert "figures-lowering" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_smoke_probes_every_endpoint(self, capsys):
        code = main(
            (
                "serve",
                "protocol",
                "--total",
                "12",
                "--max-steps",
                "5000",
                "--smoke",
            )
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "serving telemetry at http://127.0.0.1:" in printed
        assert "serve smoke ok" in printed
        assert "repro top —" in printed  # one rendered frame

    def test_serve_smoke_parallel_decide(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        code = main(
            (
                "serve",
                "decide",
                "--n",
                "4",
                "--total",
                "10",
                "--max-steps",
                "20000",
                "--jobs",
                "2",
                "--smoke",
            )
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "serve smoke ok" in printed
        assert "attempt:0" in printed


class TestTopCommand:
    def test_top_against_dead_server_fails_cleanly(self, capsys):
        assert main(("top", "http://127.0.0.1:1", "--frames", "1")) == 1
        assert "cannot reach" in capsys.readouterr().out
