"""The ``python -m repro trace`` / ``stats`` subcommands."""

import json

import pytest

from repro.__main__ import main
from repro.observability.runners import TARGETS


class TestTraceCommand:
    def test_trace_theorem3_writes_jsonl_and_digest(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(
            (
                "trace",
                "theorem3",
                "--n",
                "2",
                "--max-steps",
                "20000",
                "--out",
                str(out),
            )
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "run digest" in printed
        assert "restarts" in printed
        kinds = {json.loads(line)["kind"] for line in out.read_text().splitlines()}
        assert {"run_start", "run_end", "detect", "restart", "statement"} <= kinds

    def test_trace_no_hot_events(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        main(
            (
                "trace",
                "machine",
                "--max-steps",
                "5000",
                "--no-hot-events",
                "--out",
                str(out),
            )
        )
        kinds = {json.loads(line)["kind"] for line in out.read_text().splitlines()}
        assert "instruction" not in kinds
        assert "run_end" in kinds

    def test_trace_list(self, capsys):
        assert main(("trace", "--list")) == 0
        printed = capsys.readouterr().out
        for target in TARGETS:
            assert target in printed


class TestStatsCommand:
    def test_stats_protocol_writes_metrics_json(self, tmp_path, capsys):
        out = tmp_path / "stats.json"
        code = main(
            (
                "stats",
                "protocol",
                "--total",
                "20",
                "--max-steps",
                "5000",
                "--out",
                str(out),
            )
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["target"] == "protocol"
        assert payload["counters"]["interactions"] > 0
        assert "run digest" in capsys.readouterr().out

    def test_stats_pipeline(self, capsys):
        assert main(("stats", "pipeline", "--n", "1")) == 0
        printed = capsys.readouterr().out
        assert "stage.lower.seconds" in printed

    def test_experiment_cli_still_works(self, capsys):
        # The legacy experiment path must be untouched by the new parsing.
        assert main(("figures-lowering",)) == 0
        assert "figures-lowering" in capsys.readouterr().out
