"""The fastpath profiling hooks: engine counters and histograms."""

from repro.baselines import binary_threshold_protocol
from repro.core.multiset import Multiset
from repro.core.simulation import simulate
from repro.observability.metrics import Metrics
from repro.observability.profile import ProfilingObserver


def _profiled_run(**kwargs):
    metrics = Metrics()
    obs = ProfilingObserver(metrics)
    result = simulate(
        binary_threshold_protocol(4),
        Multiset({"p0": 10}),
        seed=2,
        max_interactions=10_000,
        observer=obs,
        **kwargs,
    )
    return result, metrics, obs


class TestProfilingObserver:
    def test_interactions_and_rate(self):
        result, metrics, _ = _profiled_run()
        assert metrics.counter("sim.interactions").value == result.interactions
        assert metrics.histogram("sim.steps_per_second").count == 1
        assert metrics.histogram("sim.steps_per_second").max > 0

    def test_enabled_candidates_histogram(self):
        _, metrics, _ = _profiled_run()
        assert metrics.histogram("sim.enabled_candidates").count > 0

    def test_index_stats_from_run_end(self):
        _, metrics, _ = _profiled_run()
        # The fastpath engine reports its EnabledIndex stats on run_end.
        assert metrics.histogram("sim.enabled_keys").count == 1
        assert metrics.histogram("sim.index_churn").count == 1

    def test_batch_and_null_skip_counters(self):
        # The uniform scheduler's geometric null-step skip-ahead reports
        # skipped runs as batch events with no transition.
        from repro.baselines import majority_protocol
        from repro.core import FastUniformScheduler

        metrics = Metrics()
        obs = ProfilingObserver(metrics)
        simulate(
            majority_protocol(),
            Multiset({"X": 60, "Y": 40}),
            seed=1,
            scheduler=FastUniformScheduler(),
            max_interactions=50_000,
            convergence_window=10**9,
            observer=obs,
        )
        assert metrics.counter("sim.batches").value > 0
        assert metrics.counter("sim.collapsed").value > 0
        assert metrics.counter("sim.null_skipped").value > 0
        assert metrics.histogram("sim.batch_size").count > 0

    def test_summary_lists_headline_numbers(self):
        _, metrics, obs = _profiled_run()
        summary = obs.summary()
        assert (
            summary["sim.interactions"]
            == metrics.counter("sim.interactions").value
        )
        assert "sim.steps_per_second.mean" in summary

    def test_owns_registry_when_none_given(self):
        obs = ProfilingObserver()
        assert isinstance(obs.metrics, Metrics)
