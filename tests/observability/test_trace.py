"""TraceRecorder behaviour: event capture, JSONL round-trips, sampled
history, Lipton level derivation, and the Theorem 3 acceptance trace."""

import json

import pytest

from repro.baselines import binary_threshold_protocol
from repro.core import EnabledTransitionScheduler, Multiset, simulate
from repro.lipton import build_threshold_program, canonical_restart_policy
from repro.lipton.levels import threshold
from repro.observability import (
    ALL_KINDS,
    HOT_KINDS,
    MetricsObserver,
    TraceRecorder,
    lipton_level,
    summarize,
)
from repro.observability import events as ev
from repro.observability.runners import run_theorem3
from repro.programs import run_program


@pytest.fixture(scope="module")
def theorem3_trace():
    """A traced run of the Theorem 3 program at n=2, just below the
    threshold k=10 — the detect–restart regime (the acceptance workload)."""
    recorder = TraceRecorder(snapshot_every=1_000)
    run = run_theorem3(n=2, seed=0, max_steps=40_000, recorder=recorder)
    return run


class TestTheorem3Trace:
    def test_contains_restart_and_detect_events(self, theorem3_trace):
        counts = theorem3_trace.recorder.kind_counts()
        assert counts.get(ev.RESTART, 0) >= 1
        assert counts.get(ev.DETECT, 0) >= 100
        assert counts.get(ev.STATEMENT, 0) >= 100
        assert counts[ev.RUN_START] == 1
        assert counts[ev.RUN_END] == 1

    def test_steps_are_monotonic(self, theorem3_trace):
        steps = [
            event.step
            for event in theorem3_trace.recorder.events
            if event.step is not None
        ]
        assert all(a <= b for a, b in zip(steps, steps[1:]))

    def test_snapshots_sampled_at_interval(self, theorem3_trace):
        snapshots = theorem3_trace.recorder.snapshots()
        assert snapshots
        assert all(event.step % 1_000 == 0 for event in snapshots)
        # Snapshots carry the full register configuration, preserving mass.
        total = threshold(2) - 1
        for event in snapshots:
            assert sum(event.data["configuration"].values()) == total

    def test_level_progression_recorded(self, theorem3_trace):
        levels = theorem3_trace.recorder.level_progression()
        assert levels and levels[0] == 1  # everything starts in x1
        assert max(levels) == 2  # the canonical restart reaches level 2

    def test_stats_digest_has_counters(self, theorem3_trace):
        digest = theorem3_trace.digest()
        assert "steps" in digest
        assert "productive" in digest
        assert "restarts" in digest
        assert "detect_true" in digest
        assert theorem3_trace.metrics.metrics.counters["restarts"].value >= 1
        assert theorem3_trace.metrics.metrics.counters["productive"].value > 0

    def test_jsonl_round_trip(self, theorem3_trace, tmp_path):
        path = theorem3_trace.recorder.write_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(theorem3_trace.recorder.events)
        for line in lines[:50]:
            json.loads(line)  # every line is standalone JSON
        back = TraceRecorder.read_jsonl(path)
        assert len(back.events) == len(theorem3_trace.recorder.events)
        assert [e.kind for e in back.events] == [
            e.kind for e in theorem3_trace.recorder.events
        ]


class TestProtocolTrace:
    def test_interaction_and_silence_events(self):
        # The default (fast) scheduler may collapse runs of steps into
        # BATCH events, so the interaction accounting is: one INTERACTION
        # event per sampled step plus the collapsed counts of every BATCH.
        recorder = TraceRecorder(snapshot_every=50)
        result = simulate(
            binary_threshold_protocol(5),
            Multiset({"p0": 9}),
            seed=4,
            max_interactions=20_000,
            observer=recorder,
        )
        counts = recorder.kind_counts()
        batched = sum(e.data["count"] for e in recorder.events_of(ev.BATCH))
        assert counts[ev.INTERACTION] + batched == result.interactions
        assert counts.get(ev.SCHEDULER, 0) == counts[ev.INTERACTION]
        assert counts[ev.RUN_END] == 1
        end = recorder.events_of(ev.RUN_END)[0]
        assert end.data["interactions"] == result.interactions
        assert end.data["productive"] == result.productive
        assert end.data["verdict"] == result.verdict

    def test_interaction_events_exact_with_legacy_scheduler(self):
        # The legacy scheduler has no batching: exactly one INTERACTION
        # and one SCHEDULER event per scheduler step, as before.
        recorder = TraceRecorder(snapshot_every=50)
        result = simulate(
            binary_threshold_protocol(5),
            Multiset({"p0": 9}),
            seed=4,
            scheduler=EnabledTransitionScheduler(),
            max_interactions=20_000,
            observer=recorder,
        )
        counts = recorder.kind_counts()
        assert counts[ev.INTERACTION] == result.interactions
        assert counts.get(ev.SCHEDULER, 0) == result.interactions
        assert ev.BATCH not in counts

    def test_output_flip_events_match_output_trace(self):
        recorder = TraceRecorder()
        result = simulate(
            binary_threshold_protocol(4),
            Multiset({"p0": 7}),
            seed=9,
            max_interactions=20_000,
            observer=recorder,
        )
        flips = recorder.events_of(ev.OUTPUT_FLIP)
        # output_trace additionally records the initial output at step 0.
        assert [(e.step, e.data["output"]) for e in flips] == result.output_trace[1:]

    def test_snapshots_preserve_population(self):
        recorder = TraceRecorder(snapshot_every=100)
        simulate(
            binary_threshold_protocol(6),
            Multiset({"p0": 11}),
            seed=1,
            max_interactions=5_000,
            observer=recorder,
        )
        for event in recorder.snapshots():
            assert sum(event.data["configuration"].values()) == 11


class TestRecorderControls:
    def test_kind_whitelist_drops_hot_events(self):
        recorder = TraceRecorder(kinds=ALL_KINDS - HOT_KINDS)
        run_program(
            build_threshold_program(2),
            {"x1": 9},
            seed=0,
            restart_policy=canonical_restart_policy(2),
            max_steps=10_000,
            observer=recorder,
        )
        counts = recorder.kind_counts()
        assert ev.STATEMENT not in counts
        assert ev.DETECT in counts
        assert ev.RUN_END in counts

    def test_max_events_cap_counts_drops(self):
        recorder = TraceRecorder(max_events=10)
        run_program(
            build_threshold_program(1),
            {"x1": 3},
            seed=0,
            max_steps=5_000,
            observer=recorder,
        )
        assert len(recorder.events) == 10
        assert recorder.dropped > 0

    def test_summarize_renders_without_metrics(self):
        recorder = TraceRecorder()
        recorder.record(ev.RESTART, 7, layer="program", count=1)
        text = summarize(None, recorder)
        assert "restart" in text


class TestLiptonLevel:
    def test_level_of_register_snapshot(self):
        assert lipton_level({"x1": 3, "R": 2}) == 1
        assert lipton_level({"x1": 0, "xb2": 1}) == 2
        assert lipton_level({"R": 5}) == 0
        assert lipton_level({"yb3": 1, "y1": 4}) == 3

    def test_ignores_foreign_registers(self):
        assert lipton_level({"counter": 9, "x2": 1}) == 2
