"""Metrics registry and MetricsObserver aggregation."""

import json

import pytest

from repro.baselines import binary_threshold_protocol
from repro.core import Multiset, simulate
from repro.lipton import build_threshold_program, canonical_restart_policy
from repro.machines import lower_program, run_machine
from repro.observability import Metrics, MetricsObserver, summarize, transition_label
from repro.conversion import compile_threshold_protocol
from repro.programs import run_program


class TestInstruments:
    def test_counter(self):
        metrics = Metrics()
        metrics.counter("a").inc()
        metrics.counter("a").inc(4)
        assert metrics.counters["a"].value == 5

    def test_gauge(self):
        metrics = Metrics()
        metrics.gauge("g").set(1.5)
        metrics.gauge("g").set(2.5)
        assert metrics.gauges["g"].value == 2.5

    def test_histogram(self):
        metrics = Metrics()
        for value in (1.0, 3.0, 2.0):
            metrics.histogram("h").observe(value)
        h = metrics.histograms["h"]
        assert (h.count, h.min, h.max, h.mean) == (3, 1.0, 3.0, 2.0)

    def test_timer_records_seconds(self):
        metrics = Metrics()
        with metrics.timer("t"):
            pass
        assert metrics.histograms["t"].count == 1
        assert metrics.histograms["t"].min >= 0.0

    def test_write_json(self, tmp_path):
        metrics = Metrics()
        metrics.counter("a").inc(2)
        metrics.histogram("h").observe(1.0)
        path = metrics.write_json(tmp_path / "m.json", extra={"suite": "x"})
        payload = json.loads(path.read_text())
        assert payload["counters"]["a"] == 2
        assert payload["histograms"]["h"]["count"] == 1
        assert payload["suite"] == "x"

    def test_bool_reflects_content(self):
        metrics = Metrics()
        assert not metrics
        metrics.counter("a")
        assert metrics


class TestMetricsObserverProtocol:
    def test_counts_match_simulation_result(self):
        observer = MetricsObserver()
        result = simulate(
            binary_threshold_protocol(5),
            Multiset({"p0": 9}),
            seed=11,
            max_interactions=20_000,
            observer=observer,
        )
        counters = observer.metrics.counters
        assert counters["interactions"].value == result.interactions
        assert counters["productive"].value == result.productive
        assert counters["runs"].value == 1
        fires = sum(
            c.value for name, c in counters.items() if name.startswith("transition[")
        )
        assert fires == result.productive  # enabled scheduler: no null steps
        parallel = observer.metrics.histograms["parallel_time"]
        assert parallel.mean == pytest.approx(result.parallel_time)
        assert observer.metrics.histograms["wall_seconds"].count == 1

    def test_transition_label_is_stable(self):
        pp = binary_threshold_protocol(3)
        t = pp.transitions[0]
        assert transition_label(t) == f"{t.q},{t.r}->{t.q2},{t.r2}"


class TestMetricsObserverProgram:
    def test_program_counters(self):
        observer = MetricsObserver()
        result = run_program(
            build_threshold_program(2),
            {"x1": 9},
            seed=0,
            restart_policy=canonical_restart_policy(2),
            max_steps=20_000,
            observer=observer,
        )
        counters = observer.metrics.counters
        assert counters["restarts"].value == result.restarts
        flips = counters["output_flips"].value if "output_flips" in counters else 0
        assert flips == len(result.of_trace)
        detects = sum(
            counters[name].value
            for name in ("detect_true", "detect_false", "detect_empty")
            if name in counters
        )
        assert detects > 0
        statements = sum(
            c.value for name, c in counters.items() if name.startswith("statement[")
        )
        assert statements == counters["steps"].value

    def test_machine_counters(self):
        observer = MetricsObserver()
        result = run_machine(
            lower_program(build_threshold_program(1), "lipton1"),
            {"x1": 3},
            seed=3,
            max_steps=20_000,
            quiet_window=None,
            observer=observer,
        )
        counters = observer.metrics.counters
        assert counters["steps"].value == result.steps
        assert counters["restarts"].value == result.restarts
        instructions = sum(
            c.value for name, c in counters.items() if name.startswith("instruction[")
        )
        assert instructions == result.steps


class TestPipelineStages:
    def test_stage_timings_recorded(self):
        observer = MetricsObserver()
        result = compile_threshold_protocol(1, observer=observer)
        histograms = observer.metrics.histograms
        for stage in ("lower", "convert", "broadcast"):
            assert histograms[f"stage.{stage}.seconds"].count == 1
        gauges = observer.metrics.gauges
        assert gauges["stage.lower.machine_size"].value == result.machine_size
        assert gauges["stage.broadcast.states"].value == result.state_count


class TestSummarize:
    def test_digest_mentions_headline_counters(self):
        observer = MetricsObserver()
        simulate(
            binary_threshold_protocol(4),
            Multiset({"p0": 7}),
            seed=2,
            max_interactions=10_000,
            observer=observer,
        )
        digest = summarize(observer)
        assert "interactions" in digest
        assert "productive" in digest
        assert "top transitions" in digest

    def test_empty_digest(self):
        assert "(nothing recorded)" in summarize(Metrics())
