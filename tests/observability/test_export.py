"""Prometheus text exposition and run provenance manifests."""

import json
from pathlib import Path

from repro.baselines import binary_threshold_protocol
from repro.observability.export import (
    RunManifest,
    build_manifest,
    fault_plan_digest,
    metrics_to_prometheus,
)
from repro.observability.metrics import Metrics
from repro.resilience.faults import CorruptAgents, FaultPlan

GOLDEN = Path(__file__).parent / "data" / "golden_metrics.prom"


def _golden_registry() -> Metrics:
    """A registry exercising every exposition shape: plain and bracketed
    counters, gauges, and a histogram with nontrivial buckets."""
    metrics = Metrics()
    metrics.counter("interactions").inc(828)
    metrics.counter("transition[a,b->b,b]").inc(3)
    metrics.counter("transition[x\\y]").inc(1)
    metrics.gauge("cache.hits").set(4)
    metrics.gauge("pool.jobs").set(2)
    hist = metrics.histogram("attempt.seconds")
    for value in (0.25, 0.5, 0.5, 3.0, 0.0):
        hist.observe(value)
    return metrics


class TestPrometheus:
    def test_matches_golden_file(self):
        text = metrics_to_prometheus(_golden_registry())
        assert text == GOLDEN.read_text(encoding="utf-8")

    def test_counters_get_total_suffix_and_labels(self):
        text = metrics_to_prometheus(_golden_registry())
        assert "repro_interactions_total 828" in text
        assert 'repro_transition_total{key="a,b->b,b"} 3' in text

    def test_histogram_buckets_are_cumulative(self):
        text = metrics_to_prometheus(_golden_registry())
        lines = [l for l in text.splitlines() if "attempt_seconds_bucket" in l]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)  # cumulative, monotone
        assert lines[-1].startswith('repro_attempt_seconds_bucket{le="+Inf"} 5')
        assert "repro_attempt_seconds_count 5" in text

    def test_empty_registry_renders_empty(self):
        assert metrics_to_prometheus(Metrics()) == ""

    def test_metrics_method_delegates(self):
        metrics = _golden_registry()
        assert metrics.to_prometheus() == metrics_to_prometheus(metrics)


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = build_manifest(
            "decide",
            seed=9,
            protocol=binary_threshold_protocol(4),
            jobs=2,
            outcome="verdict=True",
            n=4,
            total=10,
        )
        path = manifest.write_json(tmp_path / "run.manifest.json")
        loaded = RunManifest.read_json(path)
        assert loaded == manifest

    def test_fingerprints_are_stable(self):
        a = build_manifest("t", protocol=binary_threshold_protocol(4))
        b = build_manifest("t", protocol=binary_threshold_protocol(4))
        c = build_manifest("t", protocol=binary_threshold_protocol(5))
        assert a.protocol_fingerprint == b.protocol_fingerprint
        assert a.protocol_fingerprint != c.protocol_fingerprint

    def test_fault_plan_digest(self):
        plan = FaultPlan([CorruptAgents(at=10, agents=2)])
        digest = fault_plan_digest(plan)
        assert digest == fault_plan_digest(plan)
        assert fault_plan_digest(None) is None
        other = FaultPlan([CorruptAgents(at=11, agents=2)])
        assert digest != fault_plan_digest(other)

    def test_manifest_records_cache_and_version(self):
        manifest = build_manifest("t", cache={"hits": 3, "misses": 1})
        assert manifest.cache == {"hits": 3, "misses": 1}
        assert manifest.version  # the package version is always stamped
        assert manifest.manifest_version == 1

    def test_json_is_sorted_and_stable(self):
        manifest = build_manifest("t", seed=1, b=2, a=1)
        payload = json.loads(manifest.to_json())
        assert list(payload) == sorted(payload)
        assert payload["extra"] == {"a": 1, "b": 2}
