"""Observer identity guarantees: observing a run never changes it."""

import random

import pytest

from repro.baselines import binary_threshold_protocol, majority_protocol
from repro.core import Multiset, UniformPairScheduler, decide, simulate
from repro.lipton import build_threshold_program, canonical_restart_policy
from repro.machines import lower_program, run_machine
from repro.observability import (
    NULL_OBSERVER,
    CompositeObserver,
    MetricsObserver,
    NullObserver,
    Observer,
    TraceRecorder,
    live,
)
from repro.programs import run_program


def _sim_fingerprint(result):
    return (
        result.final.to_dict(),
        result.verdict,
        result.silent,
        result.interactions,
        result.productive,
        result.output_trace,
    )


def _program_fingerprint(result):
    return (
        result.registers,
        result.output,
        result.steps,
        result.restarts,
        result.hung,
        result.main_returned,
        result.of_trace,
        result.restart_steps,
    )


class TestLive:
    def test_none_and_null_are_stripped(self):
        assert live(None) is None
        assert live(NULL_OBSERVER) is None
        assert live(NullObserver()) is None
        assert live(Observer()) is None

    def test_real_observers_pass_through(self):
        recorder = TraceRecorder()
        assert live(recorder) is recorder
        metrics = MetricsObserver()
        assert live(metrics) is metrics


class TestSimulateIdentity:
    @pytest.mark.parametrize("observer_factory", [
        lambda: NULL_OBSERVER,
        lambda: TraceRecorder(snapshot_every=100),
        lambda: MetricsObserver(),
        lambda: CompositeObserver(TraceRecorder(), MetricsObserver()),
    ])
    def test_observed_run_is_bit_identical(self, observer_factory):
        pp = binary_threshold_protocol(5)
        config = Multiset({"p0": 9})
        bare = simulate(pp, config, seed=11, max_interactions=20_000)
        observed = simulate(
            pp,
            config,
            seed=11,
            max_interactions=20_000,
            observer=observer_factory(),
        )
        assert _sim_fingerprint(bare) == _sim_fingerprint(observed)

    def test_uniform_scheduler_identity(self):
        pp = majority_protocol()
        config = Multiset({"X": 12, "Y": 9})
        kwargs = dict(seed=2, max_interactions=5_000, convergence_window=200)
        bare = simulate(pp, config, scheduler=UniformPairScheduler(), **kwargs)
        observed = simulate(
            pp,
            config,
            scheduler=UniformPairScheduler(),
            observer=TraceRecorder(),
            **kwargs,
        )
        assert _sim_fingerprint(bare) == _sim_fingerprint(observed)

    def test_decide_identity(self):
        pp = binary_threshold_protocol(4)
        config = Multiset({"p0": 7})
        assert decide(pp, config, seed=3) == decide(
            pp, config, seed=3, observer=TraceRecorder()
        )


class TestProgramIdentity:
    def test_observed_program_run_is_bit_identical(self):
        program = build_threshold_program(2)
        policy = canonical_restart_policy(2)
        kwargs = dict(seed=5, restart_policy=policy, max_steps=20_000)
        bare = run_program(program, {"x1": 9}, **kwargs)
        observed = run_program(
            program,
            {"x1": 9},
            observer=CompositeObserver(
                TraceRecorder(snapshot_every=500), MetricsObserver()
            ),
            **kwargs,
        )
        assert _program_fingerprint(bare) == _program_fingerprint(observed)

    def test_null_observer_program_identity(self):
        program = build_threshold_program(1)
        bare = run_program(program, {"x1": 3}, seed=1, max_steps=5_000)
        observed = run_program(
            program, {"x1": 3}, seed=1, max_steps=5_000, observer=NULL_OBSERVER
        )
        assert _program_fingerprint(bare) == _program_fingerprint(observed)


class TestMachineIdentity:
    def test_observed_machine_run_is_bit_identical(self):
        machine = lower_program(build_threshold_program(1), "lipton1")
        kwargs = dict(seed=3, max_steps=20_000, quiet_window=None)
        bare = run_machine(machine, {"x1": 3}, **kwargs)
        observed = run_machine(
            machine,
            {"x1": 3},
            observer=CompositeObserver(
                TraceRecorder(snapshot_every=1_000), MetricsObserver()
            ),
            **kwargs,
        )
        assert bare.config.registers == observed.config.registers
        assert bare.config.pointers == observed.config.pointers
        assert (bare.output, bare.steps, bare.restarts, bare.hung) == (
            observed.output,
            observed.steps,
            observed.restarts,
            observed.hung,
        )
        assert bare.of_trace == observed.of_trace


class TestCompositeObserver:
    def test_fans_out_to_all_children(self):
        a, b = TraceRecorder(), TraceRecorder()
        composite = CompositeObserver(a, b)
        composite.on_output_flip(3, True, "program")
        assert len(a.events) == len(b.events) == 1

    def test_strips_null_children(self):
        composite = CompositeObserver(NULL_OBSERVER, TraceRecorder())
        assert len(composite.observers) == 1

    def test_snapshot_interval_is_min_of_children(self):
        composite = CompositeObserver(
            TraceRecorder(snapshot_every=500),
            TraceRecorder(snapshot_every=200),
            TraceRecorder(),
        )
        assert composite.snapshot_interval == 200
