"""The live telemetry stack: event bus, HTTP/SSE server, top renderer."""

import json
import urllib.request

import pytest

from repro.baselines import binary_threshold_protocol
from repro.core.multiset import Multiset
from repro.core.simulation import simulate
from repro.observability.events import SPAN
from repro.observability.live import (
    EventBus,
    LiveObserver,
    TelemetryServer,
    fetch_json,
    fetch_text,
    run_top,
)
from repro.observability.metrics import Metrics, MetricsObserver
from repro.observability.observer import CompositeObserver
from repro.observability.spans import SpanTracer, activate


class TestEventBus:
    def test_publish_fans_out_to_all_subscribers(self):
        bus = EventBus()
        q1, q2 = bus.subscribe(), bus.subscribe()
        bus.publish({"kind": "x"})
        assert q1.get_nowait() == {"kind": "x"}
        assert q2.get_nowait() == {"kind": "x"}

    def test_slow_subscriber_drops_oldest(self):
        bus = EventBus(maxsize=2)
        q = bus.subscribe()
        for i in range(5):
            bus.publish({"i": i})
        drained = []
        while not q.empty():
            drained.append(q.get_nowait()["i"])
        assert drained == [3, 4]  # freshest survive

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        q = bus.subscribe()
        bus.unsubscribe(q)
        bus.publish({"kind": "x"})
        assert q.empty()

    def test_publish_span_adapter(self):
        bus = EventBus()
        q = bus.subscribe()
        tracer = SpanTracer(listener=bus.publish_span)
        with tracer.span("work"):
            pass
        payload = q.get_nowait()
        assert payload["kind"] == SPAN
        assert payload["name"] == "work"


class TestLiveObserver:
    def test_hot_kinds_dropped_cold_kinds_published(self):
        bus = EventBus()
        q = bus.subscribe()
        obs = LiveObserver(bus)
        obs.on_interaction(1, None, None, True)  # hot: dropped
        obs.on_run_end(50, "protocol", verdict=True)
        (payload,) = [q.get_nowait() for _ in range(q.qsize())]
        assert payload["kind"] == "run_end"
        assert payload["verdict"] is True


@pytest.fixture()
def live_run():
    """A finished observed run behind a running telemetry server."""
    metrics = MetricsObserver()
    bus = EventBus()
    tracer = SpanTracer(metrics=metrics.metrics, listener=bus.publish_span)
    server = TelemetryServer(metrics=metrics.metrics, tracer=tracer, bus=bus)
    observer = CompositeObserver(metrics, LiveObserver(bus))
    with server:
        with activate(tracer):
            simulate(
                binary_threshold_protocol(4),
                Multiset({"p0": 10}),
                seed=2,
                max_interactions=10_000,
                observer=observer,
            )
        yield server


class TestTelemetryServer:
    def test_healthz(self, live_run):
        assert fetch_text(f"{live_run.url}/healthz").strip() == "ok"

    def test_metrics_exposition(self, live_run):
        text = fetch_text(f"{live_run.url}/metrics")
        assert "repro_interactions_total" in text
        assert "repro_span_simulate_total 1" in text

    def test_spans_tree(self, live_run):
        tree = fetch_json(f"{live_run.url}/spans")
        names = [child["name"] for child in tree["children"]]
        assert names == ["simulate"]

    def test_manifest_404_when_absent(self, live_run):
        with pytest.raises(urllib.request.HTTPError):
            fetch_text(f"{live_run.url}/manifest")

    def test_unknown_path_404(self, live_run):
        with pytest.raises(urllib.request.HTTPError):
            fetch_text(f"{live_run.url}/nope")

    def test_events_stream_delivers_published_frames(self, live_run):
        request = urllib.request.urlopen(f"{live_run.url}/events", timeout=5.0)
        live_run.bus.publish({"kind": "probe", "step": 1})
        for _ in range(10):
            line = request.readline().decode("utf-8").strip()
            if line.startswith("data: "):
                payload = json.loads(line[len("data: "):])
                break
        else:  # pragma: no cover - would mean only keepalives arrived
            pytest.fail("no data frame within 10 lines")
        request.close()
        assert payload == {"kind": "probe", "step": 1}

    def test_stop_is_idempotent(self, live_run):
        live_run.stop()
        live_run.stop()


class TestTop:
    def test_renders_span_tree_frames(self, live_run):
        lines = []
        rendered = run_top(
            live_run.url, frames=2, interval=0.01, plain=True, out=lines.append
        )
        assert rendered == 2
        assert "simulate" in "\n".join(lines)
        assert "interactions=" in lines[0]

    def test_unreachable_server_reports_and_returns_zero(self):
        lines = []
        rendered = run_top(
            "http://127.0.0.1:1", frames=1, plain=True, out=lines.append
        )
        assert rendered == 0
        assert "cannot reach" in lines[0]
