"""Hierarchical spans: tracer mechanics, ambient helpers, the engine
wiring, and the jobs=1 ≡ jobs=N worker-merge determinism contract."""

import json

import pytest

from repro.baselines import binary_threshold_protocol
from repro.core.multiset import Multiset
from repro.core.simulation import decide, simulate
from repro.observability.metrics import Metrics
from repro.observability import spans as spans_mod
from repro.observability.spans import SpanTracer, activate, current, span


class TestSpanTracer:
    def test_nesting_builds_paths(self):
        tracer = SpanTracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        paths = [s.path for s in tracer.spans]
        assert ("outer", "inner") in paths
        assert ("outer",) in paths

    def test_span_records_duration_and_attrs(self):
        tracer = SpanTracer()
        with tracer.span("work", items=3) as sp:
            sp.attrs["extra"] = True
        (recorded,) = tracer.spans
        assert recorded.seconds >= 0
        assert recorded.attrs == {"items": 3, "extra": True}
        assert recorded.status == "ok"

    def test_exception_marks_span_error(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (recorded,) = tracer.spans
        assert recorded.status == "error"

    def test_abandoned_children_closed_as_error(self):
        tracer = SpanTracer()
        outer = tracer.start("outer")
        tracer.start("leaked")
        tracer.end(outer)  # closes the still-open child first
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["leaked"].status == "error"
        assert by_name["outer"].status == "ok"

    def test_metrics_wiring(self):
        metrics = Metrics()
        tracer = SpanTracer(metrics=metrics)
        with tracer.span("step"):
            pass
        with tracer.span("step"):
            pass
        assert metrics.counter("span.step").value == 2
        assert metrics.histogram("span.step.seconds").count == 2

    def test_listener_sees_completed_spans(self):
        seen = []
        tracer = SpanTracer(listener=seen.append)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s.name for s in seen] == ["b", "a"]  # completion order

    def test_payload_roundtrip_and_adoption_reroots(self):
        worker = SpanTracer()
        with worker.span("attempt:3"):
            with worker.span("simulate"):
                pass
        payload = worker.to_payload()
        # The payload is JSON-serialisable as-is (pickled across the pool
        # boundary in production, but nothing in it needs pickle).
        json.dumps(payload)

        parent = SpanTracer()
        with parent.span("decide"):
            parent.adopt(payload)
        paths = {s.path for s in parent.spans}
        assert ("decide", "attempt:3") in paths
        assert ("decide", "attempt:3", "simulate") in paths

    def test_adopt_none_is_noop(self):
        tracer = SpanTracer()
        tracer.adopt(None)
        assert len(tracer) == 0

    def test_structure_is_timing_free_and_sorted(self):
        tracer = SpanTracer()
        with tracer.span("z"):
            pass
        with tracer.span("a"):
            pass
        name, count, children = tracer.structure()
        assert [child[0] for child in children] == ["a", "z"]

    def test_tree_aggregates_repeats(self):
        tracer = SpanTracer()
        for _ in range(3):
            with tracer.span("attempt"):
                pass
        tree = tracer.tree()
        (node,) = tree["children"]
        assert node["name"] == "attempt"
        assert node["count"] == 3
        assert node["seconds"] >= 0

    def test_write_json(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("only"):
            pass
        path = tracer.write_json(tmp_path / "spans.json")
        payload = json.loads(path.read_text())
        assert payload["children"][0]["name"] == "only"


class TestAmbientHelpers:
    def test_no_tracer_everything_noops(self):
        assert current() is None
        with span("ignored"):
            pass
        assert spans_mod.begin("ignored") is None
        spans_mod.finish(None)
        spans_mod.mark("ignored")
        spans_mod.adopt([{"name": "x", "path": ["x"]}])

    def test_activate_installs_and_restores(self):
        tracer = SpanTracer()
        with activate(tracer):
            assert current() is tracer
            with span("ambient"):
                pass
        assert current() is None
        assert [s.name for s in tracer.spans] == ["ambient"]

    def test_mark_records_zero_length_span(self):
        tracer = SpanTracer()
        with activate(tracer):
            spans_mod.mark("fault:corrupt", step=7)
        (recorded,) = tracer.spans
        assert recorded.name == "fault:corrupt"
        assert recorded.attrs["step"] == 7


class TestEngineSpans:
    def test_simulate_records_span_with_verdict(self):
        tracer = SpanTracer()
        with activate(tracer):
            simulate(
                binary_threshold_protocol(3),
                Multiset({"p0": 8}),
                seed=1,
                max_interactions=5_000,
            )
        (sp,) = [s for s in tracer.spans if s.name == "simulate"]
        assert "verdict" in sp.attrs
        assert sp.attrs["interactions"] > 0

    def test_simulate_without_tracer_records_nothing(self):
        result = simulate(
            binary_threshold_protocol(3),
            Multiset({"p0": 8}),
            seed=1,
            max_interactions=5_000,
        )
        assert result.interactions > 0
        assert current() is None

    def test_decide_tree_shape(self):
        tracer = SpanTracer()
        with activate(tracer):
            decide(
                binary_threshold_protocol(3),
                Multiset({"p0": 8}),
                seed=5,
                attempts=2,
                max_interactions=20_000,
            )
        _, _, children = tracer.structure()
        (decide_node,) = [c for c in children if c[0] == "decide"]
        names = [c[0] for c in decide_node[2]]
        assert "cache:table" in names
        assert any(name.startswith("attempt:") for name in names)
        attempt = next(c for c in decide_node[2] if c[0].startswith("attempt:"))
        assert [c[0] for c in attempt[2]] == ["simulate"]


class TestWorkerMerge:
    """The tentpole acceptance criterion: span trees produced with jobs=N
    match the jobs=1 structure exactly (timings and pids aside)."""

    @staticmethod
    def _decide_structure(jobs: int):
        tracer = SpanTracer()
        with activate(tracer):
            verdict = decide(
                binary_threshold_protocol(4),
                Multiset({"p0": 10}),
                seed=9,
                attempts=3,
                jobs=jobs,
                max_interactions=50_000,
            )
        return verdict, tracer.structure()

    def test_jobs1_equals_jobs2_structure(self):
        verdict_seq, structure_seq = self._decide_structure(1)
        verdict_par, structure_par = self._decide_structure(2)
        assert verdict_seq == verdict_par
        assert structure_seq == structure_par

    def test_parallel_map_adopts_in_task_order(self):
        from repro.runtime.pool import parallel_map

        tracer = SpanTracer()
        with activate(tracer):
            results = parallel_map(
                _square, [(i,) for i in range(4)], jobs=2
            )
        assert results == [0, 1, 4, 9]
        top = [s.name for s in tracer.spans if len(s.path) == 1]
        assert top == [f"task:{i}" for i in range(4)]

    def test_parallel_map_custom_labels_validated(self):
        from repro.runtime.pool import parallel_map

        tracer = SpanTracer()
        with activate(tracer):
            with pytest.raises(ValueError):
                parallel_map(
                    _square, [(1,), (2,)], jobs=1, span_labels=["only-one"]
                )

    def test_parallel_map_without_tracer_unchanged(self):
        from repro.runtime.pool import parallel_map

        assert parallel_map(_square, [(i,) for i in range(3)], jobs=2) == [0, 1, 4]


def _square(x: int) -> int:
    """Module-level so the pool can pickle it by reference."""
    return x * x
