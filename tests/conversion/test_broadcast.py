"""Tests for the output-broadcast construction."""

import pytest

from repro.core import Multiset, simulate
from repro.machines import OF
from repro.conversion import OpinionState, PointerState, with_output_broadcast


@pytest.fixture(scope="module")
def pipeline():
    from repro.conversion import compile_program
    from repro.programs import simple_threshold_program

    return compile_program(simple_threshold_program(2), "thr2")


class TestStructure:
    def test_doubles_states(self, pipeline):
        inner = pipeline.inner_protocol
        outer = pipeline.protocol
        assert outer.state_count == 2 * inner.state_count

    def test_inputs_start_with_false_opinion(self, pipeline):
        for state in pipeline.protocol.input_states:
            assert isinstance(state, OpinionState)
            assert state.opinion is False

    def test_accepting_iff_opinion_true(self, pipeline):
        for state in pipeline.protocol.states:
            assert (state in pipeline.protocol.accepting_states) == state.opinion

    def test_of_interactions_broadcast(self, pipeline):
        """Transitions whose post includes the OF agent force both
        opinions to OF's value."""
        for t in pipeline.protocol.transitions:
            post_of = [
                s.base
                for s in (t.q2, t.r2)
                if isinstance(s.base, PointerState) and s.base.pointer == OF
            ]
            if post_of:
                value = bool(post_of[0].value)
                assert t.q2.opinion == value and t.r2.opinion == value

    def test_non_of_interactions_preserve_opinions(self, pipeline):
        for t in pipeline.protocol.transitions:
            involves_of = any(
                isinstance(s.base, PointerState) and s.base.pointer == OF
                for s in (t.q, t.r, t.q2, t.r2)
            )
            if not involves_of:
                assert t.q.opinion == t.q2.opinion
                assert t.r.opinion == t.r2.opinion


class TestBehaviour:
    def test_epidemic_of_true_opinion(self, pipeline):
        """Starting from a pi-like config with OF = true, every agent
        eventually holds opinion true."""
        inner = pipeline.conversion
        machine_config = pipeline.machine.initial_configuration({"x": 3})
        machine_config.pointers[OF] = True
        # Lift the inner pi-image into the broadcast protocol, opinions F.
        from repro.conversion import pi

        inner_config = pi(inner, machine_config)
        # Freeze machine progress by dropping the IP agent: only opinion
        # epidemics remain possible.
        from repro.machines import IP

        lifted = {}
        for state, count in inner_config.items():
            if isinstance(state, PointerState) and state.pointer == IP:
                continue
            lifted[OpinionState(state, False)] = count
        config = Multiset(lifted)
        result = simulate(
            pipeline.protocol,
            config,
            seed=0,
            max_interactions=100_000,
            convergence_window=2_000,
        )
        assert result.verdict is True

    def test_end_to_end_decision(self, pipeline):
        initial = next(iter(pipeline.protocol.input_states))
        population = pipeline.shift + 4  # m = 4 >= 2
        result = simulate(
            pipeline.protocol,
            Multiset({initial: population}),
            seed=5,
            max_interactions=2_000_000,
            convergence_window=60_000,
        )
        assert result.verdict is True
