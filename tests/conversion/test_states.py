"""Tests for the conversion state space (App. B.3 stage sets)."""

from repro.machines import IP, register_map_pointer
from repro.conversion import (
    IP_STAGES,
    MapState,
    PLAIN_STAGES,
    PointerState,
    REGISTER_MAP_STAGES,
    pointer_states,
    stages_of,
)


class TestStageSets:
    def test_ip_stages(self):
        assert stages_of(IP) == IP_STAGES == ("none", "wait", "half")

    def test_register_map_stages(self):
        assert stages_of(register_map_pointer("x")) == REGISTER_MAP_STAGES
        assert len(REGISTER_MAP_STAGES) == 7  # the '7' in Prop 16's bound

    def test_plain_stages(self):
        assert stages_of("OF") == PLAIN_STAGES == ("none", "done")
        assert stages_of("CF") == PLAIN_STAGES
        assert stages_of("P[Main]") == PLAIN_STAGES

    def test_box_pointer_is_register_map(self):
        assert stages_of(register_map_pointer("#")) == REGISTER_MAP_STAGES


class TestStates:
    def test_pointer_state_repr(self):
        s = PointerState("OF", True, "none")
        assert "OF" in repr(s) and "none" in repr(s)

    def test_map_state_repr(self):
        assert "map" in repr(MapState("OF", 3))

    def test_pointer_states_cardinality(self, thr2_machine):
        of_states = pointer_states(thr2_machine, "OF")
        assert len(of_states) == 2 * len(PLAIN_STAGES)
        ip_states = pointer_states(thr2_machine, IP)
        assert len(ip_states) == thr2_machine.length * len(IP_STAGES)

    def test_states_are_hashable_and_distinct(self, thr2_machine):
        all_states = []
        for pointer in thr2_machine.pointer_domains:
            all_states.extend(pointer_states(thr2_machine, pointer))
        assert len(set(all_states)) == len(all_states)
