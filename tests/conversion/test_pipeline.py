"""Tests for the end-to-end compilation pipeline (Theorems 1 & 5)."""

import pytest

from repro.core import Multiset, ShiftedThreshold, Threshold, simulate
from repro.lipton import threshold
from repro.programs import simple_threshold_program
from repro.conversion import compile_program, compile_threshold_protocol


@pytest.fixture(scope="module")
def thr2():
    return compile_program(simple_threshold_program(2), "thr2")


class TestArtefacts:
    def test_all_stages_present(self, thr2):
        assert thr2.program is not None
        assert thr2.machine.length > 0
        assert thr2.inner_protocol.state_count > 0
        assert thr2.protocol.state_count == 2 * thr2.inner_protocol.state_count

    def test_state_bound(self, thr2):
        assert thr2.inner_state_count <= thr2.state_bound

    def test_shifted_predicate(self, thr2):
        predicate = thr2.shifted_predicate(Threshold(2))
        assert isinstance(predicate, ShiftedThreshold)
        assert predicate.shift == thr2.shift
        assert not predicate(thr2.shift + 1)
        assert predicate(thr2.shift + 2)


class TestTheorem1Pipeline:
    def test_compile_n1(self):
        result = compile_threshold_protocol(1)
        # Theorem 1 for n=1: the protocol decides x >= k_1 + |F|.
        assert result.shift == len(result.machine.pointer_domains)
        assert result.state_count < 1000  # O(n) states, small constant base

    def test_states_grow_linearly_while_k_doubles_exponentially(self):
        from repro.machines import lower_program
        from repro.lipton import build_threshold_program
        from repro.conversion import final_state_count

        counts = []
        for n in (1, 2, 3, 4, 5):
            machine = lower_program(build_threshold_program(n))
            counts.append(final_state_count(machine))
        increments = [b - a for a, b in zip(counts, counts[1:])]
        # Per-level state increment becomes exactly constant (O(n) states)...
        assert len(set(increments[2:])) == 1
        assert max(increments) < 3000
        # ...while k grows double-exponentially.
        assert threshold(5) > 2 ** (2**4)

    def test_error_checking_flag_propagates(self):
        bare = compile_threshold_protocol(1, error_checking=False)
        full = compile_threshold_protocol(1)
        assert bare.state_count < full.state_count


class TestEndToEndDecision:
    @pytest.mark.parametrize("offset,expected", [(1, False), (2, True), (4, True)])
    def test_thr2_protocol(self, thr2, offset, expected):
        initial = next(iter(thr2.protocol.input_states))
        population = thr2.shift + offset
        result = simulate(
            thr2.protocol,
            Multiset({initial: population}),
            seed=100 + offset,
            max_interactions=3_000_000,
            convergence_window=60_000,
        )
        assert result.verdict is expected
