"""Tests for the machine → protocol conversion gadgets (App. B.3)."""

import random

import pytest

from repro.core import Multiset
from repro.core.scheduler import EnabledTransitionScheduler
from repro.core.semantics import apply_transition_inplace
from repro.machines import IP, OF, register_map_pointer
from repro.conversion import (
    MapState,
    PointerState,
    convert_machine,
    converted_state_count,
    default_initial_values,
    final_state_count,
    initial_protocol_configuration,
    pi,
    pointer_enumeration,
    proposition16_state_bound,
)


@pytest.fixture(scope="module")
def thr2_conv(thr2_pipeline):
    return thr2_pipeline.conversion


# conftest fixtures are function-scoped by default; re-expose at module scope
@pytest.fixture(scope="module")
def thr2_pipeline():
    from repro.conversion import compile_program
    from repro.programs import simple_threshold_program

    return compile_program(simple_threshold_program(2), "thr2")


class TestEnumeration:
    def test_ip_is_last(self, thr2_conv):
        assert thr2_conv.pointer_order[-1] == IP

    def test_all_pointers_enumerated(self, thr2_conv):
        assert set(thr2_conv.pointer_order) == set(
            thr2_conv.machine.pointer_domains
        )

    def test_initial_values_satisfy_definition13(self, thr2_conv):
        values = thr2_conv.initial_values
        assert values[IP] == 1
        for reg in thr2_conv.machine.registers:
            assert values[register_map_pointer(reg)] == reg

    def test_shift_is_pointer_count(self, thr2_conv):
        assert thr2_conv.shift == len(thr2_conv.machine.pointer_domains)


class TestStateSpace:
    def test_closed_form_matches_constructed(self, thr2_conv):
        assert (
            converted_state_count(thr2_conv.machine)
            == thr2_conv.protocol.state_count
        )

    def test_proposition16_bound_holds(self, thr2_conv):
        assert thr2_conv.protocol.state_count <= proposition16_state_bound(
            thr2_conv.machine
        )

    def test_final_count_doubles(self, thr2_conv):
        assert final_state_count(thr2_conv.machine) == 2 * converted_state_count(
            thr2_conv.machine
        )

    def test_registers_are_states(self, thr2_conv):
        for reg in thr2_conv.machine.registers:
            assert reg in thr2_conv.protocol.states

    def test_map_states_only_for_general_assignments(self, thr2_conv):
        map_states = [s for s in thr2_conv.protocol.states if isinstance(s, MapState)]
        for state in map_states:
            instr = thr2_conv.machine.instruction_at(state.instruction)
            assert instr.target == state.pointer
            assert instr.target != IP and instr.target != instr.source


class TestElection:
    def test_elect_transition_count(self, thr2_conv):
        """One ordered-pair family per pointer: Σ |Q_X|²."""
        from repro.conversion import pointer_states

        expected = sum(
            len(pointer_states(thr2_conv.machine, p)) ** 2
            for p in thr2_conv.pointer_order
        )
        assert len(thr2_conv.elect_transitions) == expected

    def test_ip_collision_demotes_to_hub(self, thr2_conv):
        hub = thr2_conv.hub_register
        ip_collisions = [
            t
            for t in thr2_conv.elect_transitions
            if isinstance(t.q, PointerState) and t.q.pointer == IP
            and isinstance(t.r, PointerState) and t.r.pointer == IP
        ]
        assert ip_collisions
        assert all(t.r2 == hub for t in ip_collisions)
        first = thr2_conv.pointer_order[0]
        assert all(
            t.q2 == PointerState(first, thr2_conv.initial_values[first], "none")
            for t in ip_collisions
        )

    def test_chain_initialises_next_pointer(self, thr2_conv):
        order = thr2_conv.pointer_order
        for i, pointer in enumerate(order[:-1]):
            collisions = [
                t
                for t in thr2_conv.elect_transitions
                if isinstance(t.q, PointerState) and t.q.pointer == pointer
            ]
            successor = order[i + 1]
            assert all(
                isinstance(t.r2, PointerState) and t.r2.pointer == successor
                for t in collisions
            )

    def test_election_from_all_initial(self, thr2_conv):
        """From m agents in the initial state, the elect transitions reach
        a configuration with one agent per pointer and the rest as
        register units."""
        rng = random.Random(0)
        scheduler = EnabledTransitionScheduler()
        population = thr2_conv.shift + 3
        config = initial_protocol_configuration(thr2_conv, population)
        protocol = thr2_conv.protocol
        from repro.conversion import inverse_pi

        for _ in range(200_000):
            if inverse_pi(thr2_conv, config) is not None:
                break
            step = scheduler.select(protocol, config, rng)
            assert step.transition is not None
            apply_transition_inplace(config, step.transition)
        recovered = inverse_pi(thr2_conv, config)
        assert recovered is not None
        assert recovered.registers[thr2_conv.hub_register] == 3


class TestGadgetStructure:
    def test_every_instruction_has_a_gadget(self, thr2_conv):
        machine = thr2_conv.machine
        for index in range(1, machine.length + 1):
            assert index in thr2_conv.instruction_transitions

    def test_accepting_states_are_of_true(self, thr2_conv):
        for state in thr2_conv.protocol.accepting_states:
            assert isinstance(state, PointerState)
            assert state.pointer == OF and state.value is True

    def test_detect_false_family_covers_other_states(self, thr2_conv):
        """⟨test⟩: the test stage declares false on meeting any state other
        than the watched register's."""
        from repro.machines import DetectInstr

        machine = thr2_conv.machine
        for index, instr in enumerate(machine.instructions, start=1):
            if not isinstance(instr, DetectInstr):
                continue
            gadget = thr2_conv.instruction_transitions[index]
            vx = register_map_pointer(instr.x)
            for v in machine.pointer_domains[vx]:
                false_partners = {
                    t.r
                    for t in gadget
                    if isinstance(t.q, PointerState)
                    and t.q == PointerState(vx, v, "test")
                    and isinstance(t.q2, PointerState)
                    and t.q2.stage == "false"
                }
                assert v not in false_partners
                assert len(false_partners) == thr2_conv.protocol.state_count - 1
            return  # one detect suffices
        pytest.fail("machine has no detect instruction")


class TestPiMapping:
    def test_pi_round_trip(self, thr2_conv):
        from repro.conversion import inverse_pi

        machine_config = thr2_conv.machine.initial_configuration({"x": 4, "y": 1})
        image = pi(thr2_conv, machine_config)
        assert image.size == 5 + thr2_conv.shift
        recovered = inverse_pi(thr2_conv, image)
        assert recovered is not None
        assert recovered.registers == machine_config.registers
        for pointer in thr2_conv.pointer_order:
            assert recovered.pointers[pointer] == machine_config.pointers[pointer]

    def test_non_pi_image_rejected(self, thr2_conv):
        from repro.conversion import inverse_pi

        machine_config = thr2_conv.machine.initial_configuration({"x": 1})
        image = pi(thr2_conv, machine_config)
        # Duplicate a pointer agent: no longer a pi-image.
        state = PointerState(IP, 1, "none")
        broken = image + Multiset({state: 1})
        assert inverse_pi(thr2_conv, broken) is None

    def test_mid_gadget_not_pi_image(self, thr2_conv):
        from repro.conversion import inverse_pi

        machine_config = thr2_conv.machine.initial_configuration({"x": 1})
        image = pi(thr2_conv, machine_config)
        wait = image - Multiset({PointerState(IP, 1, "none"): 1}) + Multiset(
            {PointerState(IP, 1, "wait"): 1}
        )
        assert inverse_pi(thr2_conv, wait) is None
