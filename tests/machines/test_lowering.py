"""Tests for the program → machine compiler (§7.2, Figures 3/5/6/7)."""

import pytest

from repro.machines import (
    AssignInstr,
    DetectInstr,
    IP,
    MoveInstr,
    OF,
    decide_machine,
    lower_program,
    procedure_pointer,
    register_map_pointer,
)
from repro.programs import (
    CallExpr,
    CallStmt,
    Detect,
    If,
    Move,
    Not,
    Restart,
    Return,
    SetOutput,
    Swap,
    While,
    procedure,
    program,
    program_size,
    seq,
    while_true,
)


def lower(*procs, registers=("x", "y")):
    return lower_program(program(registers, procs))


class TestPreamble:
    def test_starts_with_main_call(self):
        m = lower(procedure("Main", while_true(SetOutput(False))))
        first = m.instructions[0]
        assert isinstance(first, AssignInstr)
        assert first.target == procedure_pointer("Main")
        # Instruction 3 is the spin loop for a returning Main.
        spin = m.instructions[2]
        assert isinstance(spin, AssignInstr) and spin.target == IP
        assert set(spin.mapping.values()) == {3}

    def test_main_return_reaches_spin(self):
        """A Main that returns immediately leaves the machine spinning at 3."""
        import random

        from repro.machines import machine_step

        m = lower(procedure("Main", SetOutput(True)))
        config = m.initial_configuration({"x": 1})
        for _ in range(20):
            machine_step(m, config, random.Random(0))
        assert config.ip == 3
        assert config.output is True


class TestStatements:
    def test_move_lowered_one_to_one(self):
        m = lower(procedure("Main", Move("x", "y"), while_true()))
        moves = [i for i in m.instructions if isinstance(i, MoveInstr)]
        assert moves == [MoveInstr("x", "y")]

    def test_swap_is_three_map_assignments(self):
        """Figure 3: swap x, y ~> V# := Vx; Vx := Vy; Vy := V#."""
        m = lower(procedure("Main", Swap("x", "y"), while_true()))
        assigns = [
            i
            for i in m.instructions
            if isinstance(i, AssignInstr) and i.target.startswith("V[")
        ]
        assert [a.target for a in assigns] == [
            register_map_pointer("#"),
            register_map_pointer("x"),
            register_map_pointer("y"),
        ]
        assert assigns[0].source == register_map_pointer("x")
        assert assigns[1].source == register_map_pointer("y")
        assert assigns[2].source == register_map_pointer("#")

    def test_set_output(self):
        m = lower(procedure("Main", SetOutput(True), while_true()))
        ofs = [i for i in m.instructions
               if isinstance(i, AssignInstr) and i.target == OF]
        assert len(ofs) == 1
        assert set(ofs[0].mapping.values()) == {True}

    def test_detect_followed_by_cf_branch(self):
        """Figure 5: every detect is followed by IP := f(CF)."""
        m = lower(
            procedure("Main", While(Detect("x"), seq(Move("x", "y"))), while_true())
        )
        for index, instr in enumerate(m.instructions[:-1]):
            if isinstance(instr, DetectInstr):
                nxt = m.instructions[index + 1]
                assert isinstance(nxt, AssignInstr)
                assert nxt.target == IP and nxt.source == "CF"

    def test_while_loops_back(self):
        m = lower(
            procedure("Main", While(Detect("x"), seq(Move("x", "y"))), while_true())
        )
        # Find the jump following the move: it must target the detect.
        for index, instr in enumerate(m.instructions):
            if isinstance(instr, MoveInstr):
                back = m.instructions[index + 1]
                assert isinstance(back, AssignInstr) and back.target == IP
                target = next(iter(back.mapping.values()))
                assert isinstance(m.instruction_at(target), DetectInstr)
                return
        pytest.fail("no move found")


class TestProcedures:
    def test_return_pointer_domain_matches_call_sites(self):
        """Figure 6: P's pointer domain has one value per call site."""
        helper = procedure("P", Return(True), returns_value=True)
        main = procedure(
            "Main",
            If(CallExpr("P"), then_body=seq()),
            CallStmt("P"),
            while_true(),
        )
        m = lower(main, helper)
        assert len(m.pointer_domains[procedure_pointer("P")]) == 2

    def test_return_value_travels_in_cf(self):
        helper = procedure("P", Return(True), returns_value=True)
        main = procedure(
            "Main",
            If(CallExpr("P"), then_body=seq(SetOutput(True))),
            while_true(),
        )
        m = lower(main, helper)
        assert decide_machine(m, {"x": 1}, seed=0, quiet_window=2_000) is True

    def test_indirect_return_jump(self):
        helper = procedure("P", Return(None))
        main = procedure("Main", CallStmt("P"), while_true())
        m = lower(main, helper)
        pointer = procedure_pointer("P")
        indirect = [
            i
            for i in m.instructions
            if isinstance(i, AssignInstr) and i.target == IP and i.source == pointer
        ]
        assert indirect  # the return


class TestRestartHelper:
    def test_helper_emitted_once(self, figure1):
        m = lower_program(figure1)
        assert m.restart_entry is not None
        # The helper: for each non-hub register one in-loop and one
        # out-loop, each loop = detect + branch + move + jump.
        helper = m.instructions[m.restart_entry - 1:]
        detects = sum(isinstance(i, DetectInstr) for i in helper)
        assert detects == 2 * (len(m.registers) - 1)
        # Its residual restart lowers to IP := 1.
        last = m.instructions[-1]
        assert isinstance(last, AssignInstr) and last.target == IP
        assert set(last.mapping.values()) == {1}

    def test_no_helper_without_restarts(self, thr2_machine):
        assert thr2_machine.restart_entry is None


class TestSizes:
    def test_proposition14_linear_overhead(self):
        """Machine size O(program size) with a stable ratio across the
        construction family."""
        from repro.lipton import build_threshold_program

        ratios = []
        for n in (1, 2, 3, 4):
            prog = build_threshold_program(n)
            machine = lower_program(prog)
            ratios.append(machine.size() / program_size(prog).total)
        assert max(ratios) < 8
        assert max(ratios) / min(ratios) < 1.5

    def test_register_map_domains_match_swap_components(self, figure1):
        m = lower_program(figure1)
        assert set(m.pointer_domains[register_map_pointer("x")]) == {"x", "y"}
        assert set(m.pointer_domains[register_map_pointer("y")]) == {"x", "y"}
        assert m.pointer_domains[register_map_pointer("z")] == ("z",)


class TestEndToEnd:
    @pytest.mark.parametrize("x,expected", [(1, False), (2, True), (5, True)])
    def test_thr2_decisions(self, thr2_machine, x, expected):
        assert decide_machine(thr2_machine, {"x": x}, seed=x,
                              quiet_window=20_000) is expected

    def test_figure1_boundary(self, figure1):
        m = lower_program(figure1)
        for x, expected in [(3, False), (5, True), (8, False)]:
            got = decide_machine(m, {"x": x}, seed=x, quiet_window=50_000,
                                 max_steps=10_000_000)
            assert got is expected, x

    def test_lipton1_machine_decides(self, lipton1_program):
        m = lower_program(lipton1_program)
        for x, expected in [(1, False), (2, True), (4, True)]:
            got = decide_machine(m, {"x1": x}, seed=3 * x, quiet_window=100_000,
                                 max_steps=30_000_000)
            assert got is expected, x
