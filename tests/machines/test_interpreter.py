"""Tests for the machine interpreter (Definition 13 semantics)."""

import random

import pytest

from repro.machines import (
    AssignInstr,
    BOOL_DOMAIN,
    CF,
    DetectInstr,
    IP,
    MoveInstr,
    OF,
    PopulationMachine,
    decide_machine,
    machine_step,
    machine_successors,
    register_map_pointer,
    run_machine,
)


def build(instructions, registers=("x", "y"), extra_domains=None):
    length = len(instructions)
    domains = {
        OF: BOOL_DOMAIN,
        CF: BOOL_DOMAIN,
        IP: tuple(range(1, length + 1)),
    }
    for reg in registers:
        domains[register_map_pointer(reg)] = tuple(registers)
    domains[register_map_pointer("#")] = tuple(registers)
    if extra_domains:
        domains.update(extra_domains)
    return PopulationMachine(registers, domains, tuple(instructions))


JUMP1 = AssignInstr(IP, CF, {False: 1, True: 1})


class TestMoveSemantics:
    def test_move_transfers_unit(self):
        m = build([MoveInstr("x", "y"), JUMP1])
        config = m.initial_configuration({"x": 2})
        assert machine_step(m, config, random.Random(0))
        assert config.registers == {"x": 1, "y": 1}
        assert config.ip == 2

    def test_move_from_empty_hangs(self):
        m = build([MoveInstr("x", "y"), JUMP1])
        config = m.initial_configuration({"x": 0})
        assert not machine_step(m, config, random.Random(0))
        assert machine_successors(m, config) == []

    def test_move_respects_register_map(self):
        """After V_x and V_y are swapped, 'x -> y' moves y's units to x."""
        m = build([MoveInstr("x", "y"), JUMP1])
        config = m.initial_configuration({"y": 1})
        config.pointers[register_map_pointer("x")] = "y"
        config.pointers[register_map_pointer("y")] = "x"
        assert machine_step(m, config, random.Random(0))
        assert config.registers == {"x": 1, "y": 0}

    def test_move_at_last_instruction_hangs(self):
        m = build([MoveInstr("x", "y")])
        config = m.initial_configuration({"x": 5})
        assert not machine_step(m, config, random.Random(0))

    def test_aliased_map_detected(self):
        from repro.core import InvalidMachineError

        m = build([MoveInstr("x", "y"), JUMP1])
        config = m.initial_configuration({"x": 1})
        config.pointers[register_map_pointer("y")] = "x"  # corrupt
        with pytest.raises(InvalidMachineError):
            machine_step(m, config, random.Random(0))


class TestDetectSemantics:
    def test_detect_empty_always_false(self):
        m = build([DetectInstr("x"), JUMP1])
        config = m.initial_configuration({"x": 0})
        machine_step(m, config, random.Random(0))
        assert config.pointers[CF] is False

    def test_detect_nonempty_has_both_successors(self):
        m = build([DetectInstr("x"), JUMP1])
        config = m.initial_configuration({"x": 1})
        outcomes = {s.pointers[CF] for s in machine_successors(m, config)}
        assert outcomes == {True, False}

    def test_detect_empty_single_successor(self):
        m = build([DetectInstr("x"), JUMP1])
        config = m.initial_configuration({"x": 0})
        outcomes = [s.pointers[CF] for s in machine_successors(m, config)]
        assert outcomes == [False]

    def test_detect_probability_respected(self):
        m = build([DetectInstr("x"), AssignInstr(IP, CF, {False: 1, True: 1})])
        rng = random.Random(0)
        hits = 0
        for _ in range(2000):
            config = m.initial_configuration({"x": 1})
            machine_step(m, config, rng, detect_true_probability=0.3)
            hits += config.pointers[CF]
        assert abs(hits / 2000 - 0.3) < 0.05


class TestAssignSemantics:
    def test_jump(self):
        m = build([AssignInstr(IP, CF, {False: 2, True: 2}), JUMP1])
        config = m.initial_configuration({})
        machine_step(m, config, random.Random(0))
        assert config.ip == 2

    def test_pointer_update_advances_ip(self):
        m = build([AssignInstr(OF, CF, {False: True, True: True}), JUMP1])
        config = m.initial_configuration({})
        machine_step(m, config, random.Random(0))
        assert config.pointers[OF] is True
        assert config.ip == 2

    def test_non_ip_assign_at_last_instruction_hangs(self):
        m = build([AssignInstr(OF, CF, {False: True, True: True})])
        config = m.initial_configuration({})
        assert not machine_step(m, config, random.Random(0))

    def test_indirect_jump_through_pointer(self):
        m = build(
            [AssignInstr(IP, "P", {2: 2}), JUMP1],
            extra_domains={"P": (2,)},
        )
        config = m.initial_configuration({})
        config.pointers["P"] = 2
        machine_step(m, config, random.Random(0))
        assert config.ip == 2


class TestRunDrivers:
    def test_run_counts_restarts(self, figure1):
        from repro.machines import lower_program

        machine = lower_program(figure1)
        result = run_machine(
            machine, {"z": 4}, seed=0, max_steps=200_000, quiet_window=None
        )
        assert result.restarts >= 1  # z > 0 forces restarts

    def test_quiet_window_stops(self, thr2_machine):
        result = run_machine(
            thr2_machine, {"x": 5}, seed=1, quiet_window=5_000, max_steps=10**7
        )
        assert result.quiet_steps >= 5_000

    def test_decide_thr2(self, thr2_machine):
        assert decide_machine(thr2_machine, {"x": 1}, seed=0,
                              quiet_window=20_000) is False
        assert decide_machine(thr2_machine, {"x": 4}, seed=0,
                              quiet_window=20_000) is True

    def test_of_trace_recorded(self, thr2_machine):
        result = run_machine(
            thr2_machine, {"x": 4}, seed=1, quiet_window=20_000, max_steps=10**6
        )
        assert result.of_trace and result.of_trace[-1][1] is True
