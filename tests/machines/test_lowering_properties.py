"""Property-based tests: lowering invariants over random programs.

Random (well-formed) population programs are generated and compiled; the
resulting machines must validate, preserve structural invariants of the
translation scheme, and execute without errors while conserving agents.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.machines import (
    AssignInstr,
    DetectInstr,
    IP,
    MoveInstr,
    lower_program,
    procedure_pointer,
    register_map_pointer,
    run_machine,
)
from repro.programs import (
    CallExpr,
    CallStmt,
    Const,
    Detect,
    If,
    Move,
    Not,
    Or,
    Restart,
    Return,
    SetOutput,
    Swap,
    While,
    procedure,
    program,
    program_size,
    seq,
    while_true,
)
from repro.programs.ast import CallStmt as CallStmtNode, iter_statements

REGISTERS = ("a", "b", "c")


@st.composite
def conditions(draw, helpers, depth=0):
    options = ["detect", "const"]
    if helpers:
        options.append("call")
    if depth < 2:
        options.extend(["not", "or"])
    kind = draw(st.sampled_from(options))
    if kind == "detect":
        return Detect(draw(st.sampled_from(REGISTERS)))
    if kind == "const":
        return Const(draw(st.booleans()))
    if kind == "call":
        return CallExpr(draw(st.sampled_from(helpers)))
    if kind == "not":
        return Not(draw(conditions(helpers, depth + 1)))
    left = draw(conditions(helpers, depth + 1))
    right = draw(conditions(helpers, depth + 1))
    return Or(left, right)


@st.composite
def statements(draw, helpers, depth=0):
    options = ["move", "swap", "output", "restart"]
    if helpers:
        options.append("call")
    if depth < 2:
        options.extend(["if", "while"])
    kind = draw(st.sampled_from(options))
    if kind == "move":
        src = draw(st.sampled_from(REGISTERS))
        dst = draw(st.sampled_from([r for r in REGISTERS if r != src]))
        return Move(src, dst)
    if kind == "swap":
        a = draw(st.sampled_from(REGISTERS))
        b = draw(st.sampled_from([r for r in REGISTERS if r != a]))
        return Swap(a, b)
    if kind == "output":
        return SetOutput(draw(st.booleans()))
    if kind == "restart":
        return Restart()
    if kind == "call":
        return CallStmt(draw(st.sampled_from(helpers)))
    body = draw(
        st.lists(statements(helpers, depth + 1), min_size=1, max_size=3)
    )
    condition = draw(conditions(helpers, depth + 1))
    if kind == "if":
        else_body = draw(
            st.lists(statements(helpers, depth + 1), min_size=0, max_size=2)
        )
        return If(condition, seq(*body), seq(*else_body))
    # Guard while-loops against trivial infinite spins: require a detect
    # condition (eventually false on drained registers) or keep Const(False).
    if isinstance(condition, Const) and condition.value:
        condition = Detect(draw(st.sampled_from(REGISTERS)))
    return While(condition, seq(*body))


@st.composite
def programs(draw):
    n_helpers = draw(st.integers(min_value=0, max_value=2))
    helper_names = [f"H{i}" for i in range(n_helpers)]
    procs = []
    for index, name in enumerate(helper_names):
        callable_helpers = helper_names[:index]  # acyclic by construction
        body = draw(
            st.lists(statements(callable_helpers), min_size=1, max_size=3)
        )
        procs.append(
            procedure(name, *body, Return(draw(st.booleans())), returns_value=True)
        )
    main_body = draw(st.lists(statements(helper_names), min_size=1, max_size=4))
    procs.append(procedure("Main", *main_body, while_true()))
    return program(REGISTERS, procs)


@settings(max_examples=60, deadline=None)
@given(programs())
def test_lowering_validates(prog):
    """Every generated program lowers to a machine that passes Definition 6
    validation (done in the machine constructor)."""
    machine = lower_program(prog)
    assert machine.length >= 3


@settings(max_examples=60, deadline=None)
@given(programs())
def test_every_detect_followed_by_branch(prog):
    machine = lower_program(prog)
    for index, instr in enumerate(machine.instructions):
        if isinstance(instr, DetectInstr):
            assert index + 1 < machine.length
            nxt = machine.instructions[index + 1]
            assert isinstance(nxt, AssignInstr)
            assert nxt.target == IP and nxt.source == "CF"


@settings(max_examples=60, deadline=None)
@given(programs())
def test_procedure_pointer_domains_match_call_sites(prog):
    machine = lower_program(prog)
    for name in prog.procedures:
        call_sites = sum(
            1
            for proc in prog.procedures.values()
            for stmt in iter_statements(proc.body)
            if isinstance(stmt, CallStmtNode) and stmt.procedure == name
        )
        # Conditions also call procedures:
        from repro.programs.ast import condition_atoms, If as IfNode, While as WhileNode

        for proc in prog.procedures.values():
            for stmt in iter_statements(proc.body):
                if isinstance(stmt, (IfNode, WhileNode)):
                    for atom in condition_atoms(stmt.condition):
                        if isinstance(atom, CallExpr) and atom.procedure == name:
                            call_sites += 1
        if name == prog.main:
            call_sites += 1  # the synthetic preamble call
        domain = machine.pointer_domains[procedure_pointer(name)]
        if call_sites:
            assert len(domain) <= call_sites
            assert len(domain) >= 1


@settings(max_examples=60, deadline=None)
@given(programs())
def test_size_overhead_linear(prog):
    machine = lower_program(prog)
    assert machine.size() <= 25 * program_size(prog).total + 60


@settings(max_examples=40, deadline=None)
@given(programs(), st.integers(min_value=0, max_value=2**16))
def test_execution_conserves_agents(prog, seed):
    """Running any lowered machine never raises and conserves the total
    number of register units (moves only shuffle them)."""
    machine = lower_program(prog)
    result = run_machine(
        machine, {"a": 3, "b": 1}, seed=seed, max_steps=3_000, quiet_window=None
    )
    assert sum(result.config.registers.values()) == 4


@settings(max_examples=40, deadline=None)
@given(programs())
def test_restart_helper_iff_restart_statement(prog):
    has_restart = any(
        isinstance(stmt, Restart)
        for proc in prog.procedures.values()
        for stmt in iter_statements(proc.body)
    )
    machine = lower_program(prog)
    assert (machine.restart_entry is not None) == has_restart
    if has_restart:
        last = machine.instructions[-1]
        assert isinstance(last, AssignInstr) and last.target == IP
        assert set(last.mapping.values()) == {1}
