"""Tests for the population-machine model (Definitions 6 & 13)."""

import pytest

from repro.core import InvalidMachineError
from repro.machines import (
    AssignInstr,
    BOOL_DOMAIN,
    CF,
    DetectInstr,
    IP,
    MoveInstr,
    OF,
    PopulationMachine,
    pretty_print,
    register_map_pointer,
)


def minimal_domains(length, registers=("x", "y")):
    domains = {
        OF: BOOL_DOMAIN,
        CF: BOOL_DOMAIN,
        IP: tuple(range(1, length + 1)),
    }
    for reg in registers:
        domains[register_map_pointer(reg)] = (reg,)
    domains[register_map_pointer("#")] = (registers[0],)
    return domains


def spin(length=1):
    """L instructions, all jumping to 1."""
    instr = AssignInstr(IP, CF, {False: 1, True: 1})
    return PopulationMachine(
        registers=("x", "y"),
        pointer_domains=minimal_domains(length),
        instructions=(instr,) * length,
        name="spin",
    )


class TestValidation:
    def test_minimal_machine(self):
        m = spin()
        assert m.length == 1
        assert m.size() == 2 + 6 + (2 + 2 + 1 + 1 + 1 + 1) + 1

    def test_empty_instructions_rejected(self):
        with pytest.raises(InvalidMachineError):
            PopulationMachine(("x",), minimal_domains(0, ("x",)), ())

    def test_ip_domain_must_match_length(self):
        domains = minimal_domains(2)
        with pytest.raises(InvalidMachineError):
            PopulationMachine(
                ("x", "y"),
                domains,
                (AssignInstr(IP, CF, {False: 1, True: 1}),),
            )

    def test_of_domain_fixed(self):
        domains = minimal_domains(1)
        domains[OF] = ("no", "yes")
        with pytest.raises(InvalidMachineError):
            PopulationMachine(("x", "y"), domains,
                              (AssignInstr(IP, CF, {False: 1, True: 1}),))

    def test_register_map_pointer_required(self):
        domains = minimal_domains(1)
        del domains[register_map_pointer("y")]
        with pytest.raises(InvalidMachineError):
            PopulationMachine(("x", "y"), domains,
                              (AssignInstr(IP, CF, {False: 1, True: 1}),))

    def test_register_must_be_in_own_map_domain(self):
        domains = minimal_domains(1)
        domains[register_map_pointer("y")] = ("x",)
        with pytest.raises(InvalidMachineError):
            PopulationMachine(("x", "y"), domains,
                              (AssignInstr(IP, CF, {False: 1, True: 1}),))

    def test_map_domain_must_be_registers(self):
        domains = minimal_domains(1)
        domains[register_map_pointer("x")] = ("x", "ghost")
        with pytest.raises(InvalidMachineError):
            PopulationMachine(("x", "y"), domains,
                              (AssignInstr(IP, CF, {False: 1, True: 1}),))

    def test_move_requires_distinct_registers(self):
        with pytest.raises(InvalidMachineError):
            PopulationMachine(
                ("x", "y"),
                minimal_domains(1),
                (MoveInstr("x", "x"),),
            )

    def test_move_unknown_register(self):
        with pytest.raises(InvalidMachineError):
            PopulationMachine(
                ("x", "y"),
                minimal_domains(1),
                (MoveInstr("x", "ghost"),),
            )

    def test_assign_mapping_must_cover_source_domain(self):
        domains = minimal_domains(1)
        with pytest.raises(InvalidMachineError):
            PopulationMachine(
                ("x", "y"),
                domains,
                (AssignInstr(IP, CF, {False: 1}),),  # missing True
            )

    def test_assign_values_within_target_domain(self):
        domains = minimal_domains(1)
        with pytest.raises(InvalidMachineError):
            PopulationMachine(
                ("x", "y"),
                domains,
                (AssignInstr(IP, CF, {False: 1, True: 99}),),
            )

    def test_empty_pointer_domain_rejected(self):
        domains = minimal_domains(1)
        domains["P[foo]"] = ()
        with pytest.raises(InvalidMachineError):
            PopulationMachine(("x", "y"), domains,
                              (AssignInstr(IP, CF, {False: 1, True: 1}),))


class TestConfiguration:
    def test_initial_configuration(self):
        m = spin()
        config = m.initial_configuration({"x": 3})
        assert config.ip == 1
        assert config.output is False
        assert config.resolve("x") == "x"
        assert config.registers == {"x": 3, "y": 0}
        assert config.total == 3

    def test_initial_rejects_unknown_register(self):
        with pytest.raises(InvalidMachineError):
            spin().initial_configuration({"ghost": 1})

    def test_initial_rejects_negative(self):
        with pytest.raises(InvalidMachineError):
            spin().initial_configuration({"x": -1})

    def test_copy_independent(self):
        config = spin().initial_configuration({"x": 1})
        clone = config.copy()
        clone.registers["x"] = 5
        assert config.registers["x"] == 1

    def test_freeze_equality(self):
        m = spin()
        a = m.initial_configuration({"x": 2})
        b = m.initial_configuration({"x": 2})
        assert a.freeze() == b.freeze()


class TestSizeAndDisplay:
    def test_size_formula(self, thr2_machine):
        m = thr2_machine
        expected = (
            len(m.registers)
            + len(m.pointer_domains)
            + sum(len(d) for d in m.pointer_domains.values())
            + m.length
        )
        assert m.size() == expected

    def test_pretty_print_lists_all_instructions(self, thr2_machine):
        text = pretty_print(thr2_machine)
        assert text.count("\n") == thr2_machine.length
        assert "restart helper" not in text  # thr2 has no restarts

    def test_pretty_print_marks_restart_helper(self, figure1):
        from repro.machines import lower_program

        machine = lower_program(figure1)
        assert "restart helper" in pretty_print(machine)
