#!/usr/bin/env python3
"""Almost self-stabilising counting (Section 8 / Theorem 2).

Scenario from the paper's introduction: a chemical soup contains an
arbitrary mess of molecules (noise), and we want to count whether the
*total* number of molecules exceeds a threshold.  Classic threshold
protocols fail with a single noise agent (they are 1-aware: one agent in
the witness state makes everyone accept).  The paper's construction only
needs a small amount of agents in the designated initial state.

Run:  python examples/robust_counting.py
"""

import random

from repro.analysis import program_selfstab_trial
from repro.baselines import unary_threshold_protocol
from repro.core import Multiset, stabilisation_verdict
from repro.lipton import threshold


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Classic protocols break under one noise agent
    # ------------------------------------------------------------------
    k = 5
    unary = unary_threshold_protocol(k)
    # Three agents (< k), but one noise agent sits in the witness state k:
    poisoned = Multiset({1: 2, k: 1})
    verdict = stabilisation_verdict(unary, poisoned)
    print(
        f"unary protocol, k={k}: 3 agents total but one noise agent in "
        f"state {k} -> every fair run stabilises to {verdict} (WRONG: 3 < {k})"
    )

    # ------------------------------------------------------------------
    # 2. The paper's program under fully adversarial initialisation
    # ------------------------------------------------------------------
    n = 2
    kn = threshold(n)
    print(f"\npaper's construction, n={n} (k = {kn}), adversarial initial registers:")
    rng = random.Random(7)
    correct = 0
    trials = 0
    for m in (kn - 3, kn - 1, kn, kn + 2, kn + 6):
        for _ in range(2):
            outcome = program_selfstab_trial(n, m, seed=rng.randrange(2**31))
            trials += 1
            correct += outcome.correct
            flag = "ok" if outcome.correct else "WRONG"
            print(
                f"  m = {m:3d}: random registers -> stabilised to "
                f"{outcome.got} (expected {outcome.expected}) [{flag}]"
            )
    print(f"\n{correct}/{trials} adversarial-initialisation trials correct")
    print(
        "\nThe protocol-level statement (Definition 7) additionally needs "
        "|Q| agents in the initial state to rebuild the pointer agents - "
        "see the Lemma 15 experiment in benchmarks/bench_lemma15_election.py."
    )


if __name__ == "__main__":
    main()
