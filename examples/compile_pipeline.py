#!/usr/bin/env python3
"""The full compilation pipeline, stage by stage (Section 7).

Takes the Figure 1 program (4 <= x < 7), lowers it to a population
machine, disassembles a slice, converts it to a population protocol, and
runs the protocol end to end with the uniform random scheduler.

Run:  python examples/compile_pipeline.py
"""

from repro.core import Multiset, simulate
from repro.machines import pretty_print
from repro.programs import figure1_program, program_size, simple_threshold_program
from repro.conversion import compile_program


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Program -> machine (Figure 1, lowered per Figures 3/5/6/7)
    # ------------------------------------------------------------------
    program = figure1_program()
    result = compile_program(program, "figure1")
    print(f"program:  size {result.program_size} (|Q| + L + S)")
    print(f"machine:  {result.machine.length} instructions, size {result.machine_size}")
    listing = pretty_print(result.machine).splitlines()
    print("\nfirst 20 machine instructions:")
    print("\n".join(listing[:21]))
    print(f"  ... ({result.machine.length} total, restart helper at "
          f"{result.machine.restart_entry})")

    # ------------------------------------------------------------------
    # 2. Machine -> protocol (Section 7.3 gadgets)
    # ------------------------------------------------------------------
    print(f"\nprotocol: |Q*| = {result.inner_state_count} states "
          f"(Prop. 16 bound {result.state_bound}),")
    print(f"          |Q'| = {result.state_count} after the output broadcast,")
    print(f"          {len(result.protocol.transitions)} transitions,")
    print(f"          shift |F| = {result.shift} pointer agents")

    # ------------------------------------------------------------------
    # 3. Run the protocol end to end (use the smaller x >= 2 program so
    #    the random-scheduler run converges in seconds)
    # ------------------------------------------------------------------
    small = compile_program(simple_threshold_program(2), "thr2")
    initial_state = next(iter(small.protocol.input_states))
    print("\nend-to-end protocol runs (program decides m >= 2, protocol "
          f"decides x >= {2 + small.shift}):")
    for population in (small.shift + 1, small.shift + 3):
        config = Multiset({initial_state: population})
        run = simulate(
            small.protocol,
            config,
            seed=population,
            max_interactions=2_000_000,
            convergence_window=60_000,
        )
        print(
            f"  {population} agents -> verdict {run.verdict} "
            f"after {run.interactions} interactions"
        )


if __name__ == "__main__":
    main()
