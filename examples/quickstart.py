#!/usr/bin/env python3
"""Quickstart: the population-protocol model in five minutes.

Covers the core API on the paper's introductory example (majority) and a
classic threshold protocol:

1. build a protocol, inspect it;
2. sample a run with the random scheduler;
3. verify stable computation *exactly* on small populations;
4. measure state counts against the predicate's formula size.

Run:  python examples/quickstart.py
"""

from repro.baselines import (
    binary_threshold_protocol,
    majority_protocol,
    unary_threshold_protocol,
)
from repro.core import (
    Multiset,
    Threshold,
    simulate,
    stabilisation_verdict,
    verify_decides,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Majority: phi(x, y) <=> x >= y  (the paper's Section 1 example)
    # ------------------------------------------------------------------
    majority = majority_protocol()
    print(majority.describe())
    config = Multiset({"X": 8, "Y": 5})
    result = simulate(majority, config, seed=1, convergence_window=5_000)
    print(
        f"\n8 X-agents vs 5 Y-agents -> stabilised to {result.verdict} "
        f"after {result.interactions} interactions "
        f"({result.parallel_time:.1f} parallel time)"
    )

    # Exact verification: every fair run from every initial configuration
    # with up to 8 agents stabilises to the majority predicate.
    verify_decides(
        majority,
        lambda c: c["X"] >= c["Y"],
        populations=range(1, 9),
    )
    print("exact check: majority decides x >= y for all populations <= 8")

    # ------------------------------------------------------------------
    # 2. Thresholds: phi(x) <=> x >= k, the paper's central family
    # ------------------------------------------------------------------
    k = 6
    predicate = Threshold(k)
    unary = unary_threshold_protocol(k)
    binary = binary_threshold_protocol(k)
    print(f"\npredicate: {predicate}  (formula size |phi| = {predicate.formula_size()})")
    print(f"classic unary protocol: {unary.state_count} states  (Theta(k))")
    print(f"binary protocol:        {binary.state_count} states  (Theta(log k))")

    for x in (k - 1, k, k + 3):
        verdict = stabilisation_verdict(binary, Multiset({"p0": x}))
        print(f"  exact verdict for x = {x}: {verdict} (expected {x >= k})")

    print(
        "\nThe paper's construction pushes this to Theta(log log k) states "
        "without a leader - see examples/double_exponential_threshold.py."
    )


if __name__ == "__main__":
    main()
