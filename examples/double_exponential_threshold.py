#!/usr/bin/env python3
"""The paper's headline construction, end to end.

Builds the Section 6 population program for n levels, shows its O(n) size
against its double-exponential threshold k_n >= 2^(2^(n-1)), runs it on
inputs around the boundary, and compiles it down to a population protocol
(Theorem 1), reporting the state counts of every pipeline stage.

Run:  python examples/double_exponential_threshold.py
"""

from repro.lipton import (
    build_threshold_program,
    canonical_restart_policy,
    level_constant,
    threshold,
)
from repro.programs import decide_program, program_size
from repro.conversion import compile_threshold_protocol


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Sizes: O(n) program size, k growing as 2^(2^(n-1))
    # ------------------------------------------------------------------
    print("level constants and thresholds (native bignums):")
    for n in range(1, 9):
        size = program_size(build_threshold_program(n))
        print(
            f"  n={n}: N_n = {level_constant(n):>22}  "
            f"k_n = {threshold(n):>22}  program size = {size.total}"
        )

    # For n = 20 the threshold has ~157000 digits; the program still has
    # a few thousand instructions.  (Construction only - running it would
    # outlive the universe, which is rather the point of the paper.)
    n_big = 20
    size = program_size(build_threshold_program(n_big))
    import math

    digits = math.floor(threshold(n_big).bit_length() * math.log10(2)) + 1
    print(f"\n  n={n_big}: k_n has ~{digits} decimal digits; program size {size.total}")

    # ------------------------------------------------------------------
    # 2. Decisions across the threshold boundary (n = 2, k = 10)
    # ------------------------------------------------------------------
    n = 2
    k = threshold(n)
    program = build_threshold_program(n)
    policy = canonical_restart_policy(n)
    print(f"\nrunning the n={n} program (k = {k}) on totals around the boundary:")
    for m in (k - 3, k - 1, k, k + 1, k + 5):
        got = decide_program(
            program, {"x1": m}, seed=m, restart_policy=policy, quiet_window=50_000
        )
        flag = "accept" if got else "reject"
        print(f"  m = {m:3d}: {flag}  (expected {'accept' if m >= k else 'reject'})")

    # ------------------------------------------------------------------
    # 3. Theorem 1: compile to a population protocol
    # ------------------------------------------------------------------
    print("\ncompiling the n=1 program to a protocol (Theorem 1 pipeline):")
    pipeline = compile_threshold_protocol(1)
    print(f"  program size:        {pipeline.program_size.total}")
    print(f"  machine size:        {pipeline.machine_size}")
    print(f"  protocol states Q*:  {pipeline.inner_state_count}"
          f"  (Prop. 16 bound {pipeline.state_bound})")
    print(f"  final states Q':     {pipeline.state_count}")
    print(
        f"  decided predicate:   x >= {threshold(1) + pipeline.shift} "
        f"(threshold {threshold(1)} shifted by |F| = {pipeline.shift} pointer agents)"
    )


if __name__ == "__main__":
    main()
