#!/usr/bin/env python3
"""Population protocols as chemical reaction networks.

The paper motivates space complexity by chemistry: every state is a
molecular species, so a protocol with fewer states is directly a smaller
reaction network.  This example prints protocols as reaction systems and
compares species counts for the same threshold predicate, then simulates a
"well-mixed solution" and plots (in ASCII) how the accepting species takes
over the population.

Run:  python examples/chemical_reactions.py
"""

from repro.baselines import binary_threshold_protocol, unary_threshold_protocol
from repro.core import Multiset, UniformPairScheduler, simulate
from repro.core.protocol import PopulationProtocol, iter_nontrivial


def as_reactions(protocol: PopulationProtocol, limit: int = 12) -> str:
    """Render pairwise transitions as chemical reactions A + B -> C + D."""
    lines = []
    for t in iter_nontrivial(protocol):
        lines.append(f"  {t.q} + {t.r} -> {t.q2} + {t.r2}")
        if len(lines) >= limit:
            lines.append(f"  ... ({len(protocol.transitions)} reactions total)")
            break
    return "\n".join(lines)


def ascii_timeline(protocol: PopulationProtocol, config: Multiset, seed: int) -> None:
    """Track the accepting-species fraction over a uniform-scheduler run."""
    # Sample in chunks so we can print a progress bar of consensus.
    current = config
    total = config.size
    print(f"  population {total}, uniform random scheduler:")
    interactions = 0
    for chunk in range(12):
        result = simulate(
            protocol,
            current,
            seed=seed + chunk,
            scheduler=UniformPairScheduler(),
            max_interactions=400,
            convergence_window=10**9,  # never stop early; we want the trace
        )
        current = result.final
        interactions += result.interactions
        accepting = current.count(protocol.accepting_states)
        bar = "#" * int(30 * accepting / total)
        print(f"  t={interactions:5d}  accepting {accepting:3d}/{total}  |{bar}")
        if accepting == total:
            break


def main() -> None:
    k = 6
    unary = unary_threshold_protocol(k)
    binary = binary_threshold_protocol(k)

    print(f"threshold x >= {k} as a chemical reaction network\n")
    print(f"unary construction: {unary.state_count} species")
    print(as_reactions(unary))
    print(f"\nbinary construction: {binary.state_count} species")
    print(as_reactions(binary))

    print("\nconsensus formation (binary protocol, x = 14 >= 6):")
    ascii_timeline(binary, Multiset({"p0": 14}), seed=3)

    print(
        "\nThe paper's construction needs only Theta(log log k) species - "
        "tens of species for astronomically large k - at the price of a "
        "slower (detect-restart) computation."
    )


if __name__ == "__main__":
    main()
